package analyze_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"piql/internal/analyze"
	"piql/internal/core"
	"piql/internal/parser"
	"piql/internal/predict"
	"piql/internal/schema"
)

// scadrCatalog builds the SCADr schema of Section 8.1.2.
func scadrCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	cat := schema.NewCatalog()
	ddls := []string{
		`CREATE TABLE users (
			username VARCHAR(20),
			password VARCHAR(20),
			hometown VARCHAR(30),
			PRIMARY KEY (username)
		)`,
		`CREATE TABLE subscriptions (
			owner VARCHAR(20),
			target VARCHAR(20),
			approved BOOLEAN,
			PRIMARY KEY (owner, target),
			FOREIGN KEY (target) REFERENCES users,
			CARDINALITY LIMIT 100 (owner)
		)`,
		`CREATE TABLE thoughts (
			owner VARCHAR(20),
			timestamp INT,
			text VARCHAR(140),
			PRIMARY KEY (owner, timestamp)
		)`,
	}
	for _, ddl := range ddls {
		stmt, err := parser.Parse(ddl)
		if err != nil {
			t.Fatalf("parse DDL: %v", err)
		}
		if err := cat.AddTable(stmt.(*parser.CreateTable).Table); err != nil {
			t.Fatalf("add table: %v", err)
		}
	}
	return cat
}

func compile(t *testing.T, cat *schema.Catalog, src string) *core.Plan {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := core.Compile(cat, stmt.(*parser.Select))
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return plan
}

const thoughtstreamSQL = `
	SELECT thoughts.*
	FROM subscriptions s JOIN thoughts
	WHERE thoughts.owner = s.target
	  AND s.owner = [1: uname]
	  AND s.approved = true
	ORDER BY thoughts.timestamp DESC
	LIMIT 10`

func TestPKLookupBound(t *testing.T) {
	cat := scadrCatalog(t)
	plan := compile(t, cat, `SELECT * FROM users WHERE username = [1: u]`)
	b := analyze.Plan(plan)
	if !b.Bounded {
		t.Fatalf("pk lookup classified unbounded: %s", b.Reason)
	}
	if b.Ops != 1 || b.Tuples != 1 {
		t.Errorf("bound = %d ops / %d tuples, want 1/1", b.Ops, b.Tuples)
	}
	if len(b.Chain) != 1 || b.Chain[0].Kind != "point gets" {
		t.Fatalf("chain = %+v", b.Chain)
	}
	if !strings.Contains(b.Chain[0].Derivation, "primary key") {
		t.Errorf("derivation should name the primary key, got %q", b.Chain[0].Derivation)
	}
}

func TestThoughtstreamBoundAndDerivations(t *testing.T) {
	cat := scadrCatalog(t)
	plan := compile(t, cat, thoughtstreamSQL)
	b := analyze.Plan(plan)
	if !b.Bounded {
		t.Fatalf("thoughtstream classified unbounded: %s", b.Reason)
	}
	if b.Ops != plan.OpBound() {
		t.Errorf("analyzer total %d != compiler bound %d", b.Ops, plan.OpBound())
	}
	// Leaf first: subscriptions scan (card-bounded), then the sorted
	// join over thoughts (limit-bounded).
	if len(b.Chain) != 2 {
		t.Fatalf("chain length = %d, want 2: %+v", len(b.Chain), b.Chain)
	}
	scan, join := b.Chain[0], b.Chain[1]
	if scan.Kind != "range scan" || scan.Ops != 1 {
		t.Errorf("leaf = %+v, want one range scan", scan)
	}
	if !strings.Contains(scan.Derivation, "CARDINALITY LIMIT 100 (owner)") {
		t.Errorf("scan derivation should cite the declared constraint, got %q", scan.Derivation)
	}
	if join.Kind != "per-key ranges" || join.Ops != 100 {
		t.Errorf("join = %+v, want 100 per-key ranges", join)
	}
	if !strings.Contains(join.Derivation, "per-key fetch at 10") {
		t.Errorf("join derivation should cite the sort+stop pushdown, got %q", join.Derivation)
	}
	if s := b.String(); !strings.Contains(s, "bounded") {
		t.Errorf("rendering should state boundedness:\n%s", s)
	}
}

// TestPredictOpsMatchModelExtraction pins the analyzer's Θ(α, β)
// extraction to predict.PlanOps — the two walk the same plans and must
// agree, or predictions made from bounds diverge from predictions made
// from plans.
func TestPredictOpsMatchModelExtraction(t *testing.T) {
	cat := scadrCatalog(t)
	queries := []string{
		`SELECT * FROM users WHERE username = [1: u]`,
		`SELECT * FROM users WHERE hometown = [1: h] LIMIT 10`,
		thoughtstreamSQL,
		`SELECT * FROM subscriptions WHERE owner = [1: u]`,
	}
	for _, q := range queries {
		plan := compile(t, cat, q)
		got := analyze.Plan(plan).PredictOps()
		want := predict.PlanOps(plan)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s:\n  analyzer ops %+v\n  predict ops  %+v", q, got, want)
		}
	}
}

// costBasedUnbounded compiles the subscriber query the way the Section
// 8.3 baseline optimizer would: an unbounded covering scan on target.
func costBasedUnbounded(t *testing.T, cat *schema.Catalog) *core.Plan {
	t.Helper()
	stmt, err := parser.Parse(`SELECT * FROM subscriptions WHERE target = [1: t]`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := core.CompileCostBased(cat, stmt.(*parser.Select), core.Stats{})
	if err != nil {
		t.Fatalf("cost-based compile: %v", err)
	}
	if plan.Root.Bounds().Ops != core.Unbounded {
		t.Fatalf("expected the cost-based plan to be unbounded:\n%s", core.ExplainPhysical(plan.Root))
	}
	return plan
}

func TestUnboundedClassification(t *testing.T) {
	cat := scadrCatalog(t)
	b := analyze.Plan(costBasedUnbounded(t, cat))
	if b.Bounded {
		t.Fatal("unbounded covering scan classified bounded")
	}
	if b.Ops != core.Unbounded || b.Tuples != core.Unbounded {
		t.Errorf("bound = %d/%d, want unbounded sentinels", b.Ops, b.Tuples)
	}
	if !strings.Contains(b.Offender, "IndexScan") {
		t.Errorf("offender = %q, want the index scan", b.Offender)
	}
	if !strings.Contains(b.Reason, "no cardinality constraint") {
		t.Errorf("reason = %q", b.Reason)
	}
	if len(b.Suggestions) == 0 || !strings.Contains(b.Suggestions[0], "CARDINALITY LIMIT") {
		t.Errorf("suggestions = %v", b.Suggestions)
	}
	if _, err := b.Predict(nil); err == nil {
		t.Error("Predict on an unbounded bound should fail")
	}
}

func TestPolicyAdmit(t *testing.T) {
	cat := scadrCatalog(t)
	bounded := analyze.Plan(compile(t, cat, thoughtstreamSQL)) // 104 ops
	unbounded := analyze.Plan(costBasedUnbounded(t, cat))

	var nilPolicy *analyze.Policy
	if err := nilPolicy.Admit("q", unbounded); err != nil {
		t.Errorf("nil policy must admit everything, got %v", err)
	}
	advisory := &analyze.Policy{MaxOps: 1} // Enforce off
	if err := advisory.Admit("q", unbounded); err != nil {
		t.Errorf("advisory policy must admit everything, got %v", err)
	}

	strict := &analyze.Policy{Enforce: true}
	err := strict.Admit("SELECT ...", unbounded)
	var eu *analyze.ErrUnbounded
	if !errors.As(err, &eu) {
		t.Fatalf("enforcing policy returned %v, want *ErrUnbounded", err)
	}
	if eu.Operator == "" || len(eu.Chain) == 0 || len(eu.Suggestions) == 0 {
		t.Errorf("ErrUnbounded missing context: %+v", eu)
	}
	if err := strict.Admit("q", bounded); err != nil {
		t.Errorf("no-budget policy rejected a bounded plan: %v", err)
	}

	budget := &analyze.Policy{Enforce: true, MaxOps: 10}
	err = budget.Admit("SELECT ...", bounded)
	var eo *analyze.ErrOverSLO
	if !errors.As(err, &eo) {
		t.Fatalf("budget policy returned %v, want *ErrOverSLO", err)
	}
	if eo.Ops != bounded.Ops || eo.MaxOps != 10 {
		t.Errorf("ErrOverSLO = %+v", eo)
	}
	if err := (&analyze.Policy{Enforce: true, MaxOps: bounded.Ops}).Admit("q", bounded); err != nil {
		t.Errorf("budget equal to the bound must admit, got %v", err)
	}
}

func TestPolicySLOPrediction(t *testing.T) {
	model, err := predict.Train(predict.TrainConfig{
		Nodes:             4,
		ReplicationFactor: 2,
		Seed:              1,
		Intervals:         2,
		IntervalLength:    5 * time.Second,
		RepsPerInterval:   2,
		Alphas:            []int{1, 10, 100},
		AlphaJs:           []int{1, 10},
		Betas:             []int{40, 200},
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	cat := scadrCatalog(t)
	b := analyze.Plan(compile(t, cat, thoughtstreamSQL))

	pred, err := b.Predict(model)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if pred.Max99 <= 0 {
		t.Fatalf("prediction = %+v", pred)
	}

	generous := &analyze.Policy{Enforce: true, SLO: time.Hour, Model: model}
	if err := generous.Admit("q", b); err != nil {
		t.Errorf("1h SLO rejected the thoughtstream query: %v", err)
	}
	tight := &analyze.Policy{Enforce: true, SLO: time.Nanosecond, Model: model}
	err = tight.Admit("SELECT ...", b)
	var eo *analyze.ErrOverSLO
	if !errors.As(err, &eo) {
		t.Fatalf("1ns SLO returned %v, want *ErrOverSLO", err)
	}
	if eo.Predicted <= eo.SLO || eo.Quantile != 0.9 {
		t.Errorf("ErrOverSLO = %+v", eo)
	}
}
