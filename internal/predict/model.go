package predict

import (
	"fmt"
	"sort"
	"time"

	"piql/internal/core"
	"piql/internal/stats"
)

// OpKind classifies the remote operators the model distinguishes
// (Section 6.1 models only remote operators: key/value round trips
// dominate interactive query latency).
type OpKind int

const (
	// KindLookup is a batch of parallel random gets: PKLookup and
	// IndexFKJoin (α keys of β bytes).
	KindLookup OpKind = iota
	// KindScan is one contiguous range read of α entries of β bytes.
	KindScan
	// KindSortedJoin is α parallel range reads of up to αj entries each,
	// the SortedIndexJoin access pattern.
	KindSortedJoin
)

func (k OpKind) String() string {
	switch k {
	case KindLookup:
		return "Lookup"
	case KindScan:
		return "IndexScan"
	case KindSortedJoin:
		return "SortedIndexJoin"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op describes one remote operator instance for prediction: the Θ(α, β)
// parameters of Section 6.1.
type Op struct {
	Kind   OpKind
	Alpha  int // tuples (for SortedJoin: child tuples αc)
	AlphaJ int // per-join-key tuples αj (SortedJoin only)
	Beta   int // bytes per tuple
}

// gridKey is a trained configuration.
type gridKey struct {
	kind   OpKind
	alpha  int
	alphaJ int
	beta   int
}

// Model holds trained per-operator, per-interval latency histograms.
type Model struct {
	// hists[key][interval] is the response-time distribution of one
	// operator configuration during one training interval.
	hists     map[gridKey][]*Histogram
	intervals int
	alphas    []int
	alphaJs   []int
	betas     []int
}

// Intervals returns the number of trained time intervals.
func (m *Model) Intervals() int { return m.intervals }

// roundUp picks the smallest grid value >= x (or the largest grid value)
// so the model never underestimates cardinality (Section 6.1).
func roundUp(grid []int, x int) int {
	for _, g := range grid {
		if g >= x {
			return g
		}
	}
	return grid[len(grid)-1]
}

// opHists returns the per-interval histograms for an operator, rounding
// its parameters up to the trained grid.
func (m *Model) opHists(op Op) ([]*Histogram, error) {
	key := gridKey{
		kind:  op.Kind,
		alpha: roundUp(m.alphas, op.Alpha),
		beta:  roundUp(m.betas, op.Beta),
	}
	if op.Kind == KindSortedJoin {
		key.alphaJ = roundUp(m.alphaJs, op.AlphaJ)
	}
	hs, ok := m.hists[key]
	if !ok {
		return nil, fmt.Errorf("predict: no trained model for %s(α=%d, αj=%d, β=%d)",
			op.Kind, key.alpha, key.alphaJ, key.beta)
	}
	return hs, nil
}

// Prediction is the model output for one query.
type Prediction struct {
	// Per99 holds the predicted 99th-percentile latency for each
	// training interval (Fig. 5c's distribution).
	Per99 []time.Duration
	// Max99 is the conservative summary the paper's Table 1 reports.
	Max99 time.Duration
	// Mean99 is the mean of the per-interval 99th percentiles.
	Mean99 time.Duration
}

// Quantile99 returns the q-th quantile of the per-interval
// 99th-percentile distribution (e.g. 0.9 answers: "in 90% of intervals
// the 99th percentile is below this").
func (p *Prediction) Quantile99(q float64) time.Duration {
	if len(p.Per99) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(p.Per99))
	copy(sorted, p.Per99)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return stats.PercentileSorted(sorted, q*100)
}

// MeetsSLO reports whether the query is predicted to satisfy "the 99th
// percentile stays under slo in at least fraction q of intervals".
func (p *Prediction) MeetsSLO(slo time.Duration, q float64) bool {
	return p.Quantile99(q) <= slo
}

// PredictOps composes operator distributions for a serial plan: per
// interval, convolve the operators' histograms and take the 99th
// percentile (Section 6.2-6.3).
func (m *Model) PredictOps(ops []Op) (*Prediction, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("predict: no remote operators")
	}
	perOp := make([][]*Histogram, len(ops))
	for i, op := range ops {
		hs, err := m.opHists(op)
		if err != nil {
			return nil, err
		}
		perOp[i] = hs
	}
	pred := &Prediction{}
	var sum time.Duration
	for iv := 0; iv < m.intervals; iv++ {
		var q *Histogram
		for _, hs := range perOp {
			q = Convolve(q, hs[iv])
		}
		p99 := q.Quantile(0.99)
		pred.Per99 = append(pred.Per99, p99)
		if p99 > pred.Max99 {
			pred.Max99 = p99
		}
		sum += p99
	}
	pred.Mean99 = sum / time.Duration(m.intervals)
	return pred, nil
}

// PlanOps extracts the Θ(α, β) parameters of a compiled plan's remote
// operators, leaf first.
func PlanOps(plan *core.Plan) []Op {
	var ops []Op
	for _, n := range plan.RemoteOps() {
		switch n := n.(type) {
		case *core.PKLookup:
			ops = append(ops, Op{Kind: KindLookup, Alpha: len(n.Keys), Beta: n.Table.RowSizeEstimate()})
		case *core.IndexScan:
			ops = append(ops, Op{Kind: KindScan, Alpha: n.Bounds().Tuples, Beta: n.Table.RowSizeEstimate()})
			if n.NeedDeref {
				// Secondary-index dereference: one extra batch of gets.
				ops = append(ops, Op{Kind: KindLookup, Alpha: n.Bounds().Tuples, Beta: n.Table.RowSizeEstimate()})
			}
		case *core.IndexFKJoin:
			ops = append(ops, Op{Kind: KindLookup, Alpha: n.ChildPlan.Bounds().Tuples, Beta: n.Table.RowSizeEstimate()})
		case *core.SortedIndexJoin:
			ops = append(ops, Op{
				Kind:   KindSortedJoin,
				Alpha:  n.ChildPlan.Bounds().Tuples,
				AlphaJ: n.PerKeyLimit,
				Beta:   n.Table.RowSizeEstimate(),
			})
			if n.NeedDeref {
				ops = append(ops, Op{Kind: KindLookup, Alpha: n.Bounds().Tuples, Beta: n.Table.RowSizeEstimate()})
			}
		}
	}
	return ops
}

// PredictPlan predicts a compiled plan's SLO behavior.
func (m *Model) PredictPlan(plan *core.Plan) (*Prediction, error) {
	return m.PredictOps(PlanOps(plan))
}
