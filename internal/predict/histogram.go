// Package predict implements PIQL's SLO compliance prediction model
// (Section 6): per-operator response-time distributions Θ(α, β) captured
// as histograms during a training run, composed per query plan by
// convolution (serial sections) and max (parallel sections), evaluated
// per time interval to expose the cloud's tail-latency volatility
// (Fig. 5), and summarized as the distribution of per-interval
// 99th-percentile latencies.
package predict

import (
	"fmt"
	"time"
)

// BinWidth is the histogram resolution. The paper argues millisecond
// resolution suffices for interactive SLOs; the simulated cluster's
// per-op latencies sit around a millisecond, so we keep a few bins per
// millisecond.
const BinWidth = 250 * time.Microsecond

// maxBins caps a histogram at 8s of latency; anything slower clamps to
// the last bin (far beyond any interactive SLO).
const maxBins = 32000

// Histogram is a fixed-resolution latency histogram.
type Histogram struct {
	counts []float64
	total  float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Add records one observation.
func (h *Histogram) Add(d time.Duration) {
	h.AddWeighted(d, 1)
}

// AddWeighted records an observation with a fractional weight (used by
// distribution composition).
func (h *Histogram) AddWeighted(d time.Duration, w float64) {
	bin := int(d / BinWidth)
	if bin < 0 {
		bin = 0
	}
	if bin >= maxBins {
		bin = maxBins - 1
	}
	if bin >= len(h.counts) {
		grown := make([]float64, bin+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[bin] += w
	h.total += w
}

// N returns the total observation weight.
func (h *Histogram) N() float64 { return h.total }

// Quantile returns the latency at quantile p (0 < p <= 1), using the
// upper edge of the containing bin so predictions err conservative.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	target := p * h.total
	cum := 0.0
	for bin, c := range h.counts {
		cum += c
		if cum >= target {
			return time.Duration(bin+1) * BinWidth
		}
	}
	return time.Duration(len(h.counts)) * BinWidth
}

// Mean returns the mean latency (bin centers).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for bin, c := range h.counts {
		sum += c * (float64(bin) + 0.5)
	}
	return time.Duration(sum / h.total * float64(BinWidth))
}

// normalized returns bin probabilities.
func (h *Histogram) normalized() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = c / h.total
	}
	return out
}

// Convolve returns the distribution of the sum of two independent
// latencies — the composition rule for serial plan sections
// (Section 6.2). The result is renormalized to weight 1.
func Convolve(a, b *Histogram) *Histogram {
	if a == nil || a.total == 0 {
		return cloneNormalized(b)
	}
	if b == nil || b.total == 0 {
		return cloneNormalized(a)
	}
	pa, pb := a.normalized(), b.normalized()
	n := len(pa) + len(pb) - 1
	if n > maxBins {
		n = maxBins
	}
	out := &Histogram{counts: make([]float64, n)}
	for i, x := range pa {
		if x == 0 {
			continue
		}
		for j, y := range pb {
			if y == 0 {
				continue
			}
			bin := i + j
			if bin >= n {
				bin = n - 1
			}
			out.counts[bin] += x * y
		}
	}
	for _, c := range out.counts {
		out.total += c
	}
	return out
}

// MaxOf returns the distribution of max(A, B) for independent latencies
// — the composition rule for parallel plan sections such as the branches
// of a union.
func MaxOf(a, b *Histogram) *Histogram {
	if a == nil || a.total == 0 {
		return cloneNormalized(b)
	}
	if b == nil || b.total == 0 {
		return cloneNormalized(a)
	}
	pa, pb := a.normalized(), b.normalized()
	n := len(pa)
	if len(pb) > n {
		n = len(pb)
	}
	// P(max = k) = Fa(k)Fb(k) - Fa(k-1)Fb(k-1)
	out := &Histogram{counts: make([]float64, n)}
	ca, cb := 0.0, 0.0
	prev := 0.0
	for k := 0; k < n; k++ {
		if k < len(pa) {
			ca += pa[k]
		}
		if k < len(pb) {
			cb += pb[k]
		}
		cur := ca * cb
		out.counts[k] = cur - prev
		prev = cur
	}
	for _, c := range out.counts {
		out.total += c
	}
	return out
}

func cloneNormalized(h *Histogram) *Histogram {
	if h == nil {
		return NewHistogram()
	}
	out := &Histogram{counts: h.normalized(), total: 0}
	for _, c := range out.counts {
		out.total += c
	}
	return out
}

// SizeBytes reports the approximate storage footprint — the paper notes
// each histogram fits in a kilobyte or two at millisecond resolution.
func (h *Histogram) SizeBytes() int { return 8 * len(h.counts) }

func (h *Histogram) String() string {
	return fmt.Sprintf("Histogram{n=%.0f, p50=%v, p99=%v}", h.total, h.Quantile(0.50), h.Quantile(0.99))
}
