package predict

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func ms(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.N() != 100 {
		t.Fatalf("N = %v", h.N())
	}
	p50 := h.Quantile(0.50)
	if p50 < ms(49) || p50 > ms(52) {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < ms(98) || p99 > ms(101) {
		t.Fatalf("p99 = %v", p99)
	}
	mean := h.Mean()
	if mean < ms(49) || mean > ms(52) {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram()
	h.Add(-5 * time.Millisecond) // clamps to bin 0
	h.Add(time.Hour)             // clamps to last bin
	if h.N() != 2 {
		t.Fatalf("N = %v", h.N())
	}
	if h.Quantile(1.0) > 10*time.Second {
		t.Fatalf("clamped max = %v", h.Quantile(1.0))
	}
}

// TestConvolveMeansAdd: E[X+Y] = E[X] + E[Y].
func TestConvolveMeansAdd(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 5000; i++ {
		a.Add(time.Duration(1e6 + r.Intn(4e6)))
		b.Add(time.Duration(2e6 + r.Intn(6e6)))
	}
	c := Convolve(a, b)
	want := a.Mean() + b.Mean()
	got := c.Mean()
	if math.Abs(float64(got-want)) > float64(time.Millisecond) {
		t.Fatalf("conv mean = %v, want ~%v", got, want)
	}
	// Convolution against nil/empty is identity.
	if d := Convolve(nil, a); math.Abs(float64(d.Mean()-a.Mean())) > float64(BinWidth) {
		t.Fatalf("identity conv mean = %v vs %v", d.Mean(), a.Mean())
	}
	if d := Convolve(a, NewHistogram()); math.Abs(float64(d.Mean()-a.Mean())) > float64(BinWidth) {
		t.Fatalf("identity conv (empty) mean = %v vs %v", d.Mean(), a.Mean())
	}
}

// TestConvolveDeterministic: point masses add exactly.
func TestConvolveDeterministic(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(ms(10))
	b.Add(ms(25))
	c := Convolve(a, b)
	got := c.Quantile(0.5)
	if got < ms(34) || got > ms(36) {
		t.Fatalf("10ms + 25ms = %v", got)
	}
}

func TestMaxOf(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(ms(10))
	b.Add(ms(25))
	c := MaxOf(a, b)
	got := c.Quantile(0.5)
	if got < ms(24) || got > ms(26) {
		t.Fatalf("max(10, 25) = %v", got)
	}
	// Max against empty is identity.
	if d := MaxOf(nil, b); d.Quantile(0.5) != b.Quantile(0.5) {
		t.Fatalf("identity max = %v", d.Quantile(0.5))
	}
	// Max of distributions is stochastically >= both.
	r := rand.New(rand.NewSource(2))
	x, y := NewHistogram(), NewHistogram()
	for i := 0; i < 3000; i++ {
		x.Add(time.Duration(r.Intn(8e6)))
		y.Add(time.Duration(r.Intn(8e6)))
	}
	m := MaxOf(x, y)
	if m.Mean() < x.Mean() || m.Mean() < y.Mean() {
		t.Fatalf("max mean %v below inputs %v %v", m.Mean(), x.Mean(), y.Mean())
	}
}

func TestRoundUp(t *testing.T) {
	grid := []int{1, 10, 50}
	cases := map[int]int{0: 1, 1: 1, 2: 10, 10: 10, 11: 50, 50: 50, 999: 50}
	for in, want := range cases {
		if got := roundUp(grid, in); got != want {
			t.Errorf("roundUp(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTrainAndPredict(t *testing.T) {
	model, err := Train(quickTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if model.Intervals() != 4 {
		t.Fatalf("intervals = %d", model.Intervals())
	}
	// A single-get query predicts low, positive latency.
	p1, err := model.PredictOps([]Op{{Kind: KindLookup, Alpha: 1, Beta: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Max99 <= 0 || p1.Max99 > 100*time.Millisecond {
		t.Fatalf("single-get p99 = %v", p1.Max99)
	}
	// A larger plan predicts strictly more.
	p2, err := model.PredictOps([]Op{
		{Kind: KindScan, Alpha: 50, Beta: 40},
		{Kind: KindSortedJoin, Alpha: 50, AlphaJ: 10, Beta: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Max99 <= p1.Max99 {
		t.Fatalf("bigger plan predicted faster: %v vs %v", p2.Max99, p1.Max99)
	}
	if len(p2.Per99) != 4 {
		t.Fatalf("per-interval count = %d", len(p2.Per99))
	}
	if p2.Mean99 > p2.Max99 {
		t.Fatalf("mean99 %v > max99 %v", p2.Mean99, p2.Max99)
	}
	// SLO verdicts are monotone in the target.
	if p2.MeetsSLO(time.Nanosecond, 0.9) {
		t.Fatal("impossible SLO passed")
	}
	if !p2.MeetsSLO(time.Minute, 0.9) {
		t.Fatal("trivial SLO failed")
	}
	if q := p2.Quantile99(0.5); q <= 0 || q > p2.Max99 {
		t.Fatalf("median of per-interval p99s = %v", q)
	}
}

func TestPredictErrors(t *testing.T) {
	model, err := Train(quickTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.PredictOps(nil); err == nil {
		t.Fatal("empty op list accepted")
	}
	if _, err := Train(TrainConfig{}); err == nil {
		t.Fatal("zero-interval training accepted")
	}
}

// TestPredictionIsConservative: predicted p99 for an operator should be
// at or above the latency actually measured for that operator shape
// (the model rounds α and β up and takes bin upper edges).
func TestPredictionConservativeOrdering(t *testing.T) {
	model, err := Train(quickTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	small, _ := model.PredictOps([]Op{{Kind: KindScan, Alpha: 1, Beta: 40}})
	big, _ := model.PredictOps([]Op{{Kind: KindScan, Alpha: 50, Beta: 200}})
	if big.Max99 < small.Max99 {
		t.Fatalf("bigger scan predicted faster: %v < %v", big.Max99, small.Max99)
	}
}

func TestHistogramSizeReported(t *testing.T) {
	h := NewHistogram()
	h.Add(ms(100))
	if h.SizeBytes() <= 0 {
		t.Fatal("size not reported")
	}
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}
