package predict

import (
	"fmt"
	"math/rand"
	"time"

	"piql/internal/codec"
	"piql/internal/kvstore"
	"piql/internal/sim"
	"piql/internal/value"
)

// TrainConfig controls model training (Section 8.6: the paper trains on
// a 10-node, two-fold-replicated cluster over 35 ten-minute intervals).
// The statistics are application-independent: operators are sampled
// against synthetic calibration data.
type TrainConfig struct {
	Nodes             int
	ReplicationFactor int
	Seed              int64
	Intervals         int
	IntervalLength    time.Duration
	RepsPerInterval   int
	Alphas            []int // tuple-count grid (α and αc)
	AlphaJs           []int // per-join-key grid (αj)
	Betas             []int // tuple-size grid (bytes)
}

// DefaultTrainConfig mirrors the paper's setup, scaled for simulation:
// 10 nodes, replication 2, an interval per SLO window.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Nodes:             10,
		ReplicationFactor: 2,
		Seed:              1,
		Intervals:         16,
		IntervalLength:    time.Minute,
		RepsPerInterval:   5,
		Alphas:            []int{1, 5, 10, 25, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500},
		AlphaJs:           []int{1, 10, 25, 50},
		Betas:             []int{40, 200, 600},
	}
}

// FastTrainConfig returns a cheaper configuration (seconds, not
// minutes) for interactive use — the public API's TrainSLOModel uses
// it. The grid is coarser, so predictions round up more aggressively.
func FastTrainConfig() TrainConfig {
	return TrainConfig{
		Nodes:             10,
		ReplicationFactor: 2,
		Seed:              1,
		Intervals:         8,
		IntervalLength:    30 * time.Second,
		RepsPerInterval:   4,
		Alphas:            []int{1, 5, 10, 25, 50, 100, 250, 500},
		AlphaJs:           []int{1, 10, 25, 50},
		Betas:             []int{40, 200, 600},
	}
}

// quickTrainConfig returns a small configuration for tests.
func quickTrainConfig() TrainConfig {
	return TrainConfig{
		Nodes:             4,
		ReplicationFactor: 2,
		Seed:              1,
		Intervals:         4,
		IntervalLength:    10 * time.Second,
		RepsPerInterval:   6,
		Alphas:            []int{1, 10, 50},
		AlphaJs:           []int{1, 10},
		Betas:             []int{40, 200},
	}
}

// calibration key layout: cal:<beta>:<kind>:<prefix>:<item>.
func calKey(beta int, deep bool, prefix, item int) []byte {
	kind := int64(0)
	if deep {
		kind = 1
	}
	return codec.EncodeKey(value.Row{
		value.Str("cal"),
		value.Int(int64(beta)),
		value.Int(kind),
		value.Int(int64(prefix)),
		value.Int(int64(item)),
	}, nil)
}

func calPrefix(beta int, deep bool, prefix int) []byte {
	kind := int64(0)
	if deep {
		kind = 1
	}
	return codec.EncodeKey(value.Row{
		value.Str("cal"),
		value.Int(int64(beta)),
		value.Int(kind),
		value.Int(int64(prefix)),
	}, nil)
}

const (
	deepPrefixes    = 8   // prefixes with enough items for big scans
	shallowPrefixes = 520 // prefixes for sorted-join fan-out
)

// Train builds a simulated cluster, loads calibration data, samples
// every operator configuration repeatedly in every interval, and
// returns the trained model.
func Train(cfg TrainConfig) (*Model, error) {
	if cfg.Intervals <= 0 || cfg.RepsPerInterval <= 0 {
		return nil, fmt.Errorf("predict: training needs at least one interval and rep")
	}
	maxAlpha := cfg.Alphas[len(cfg.Alphas)-1]
	maxAlphaJ := cfg.AlphaJs[len(cfg.AlphaJs)-1]

	env := sim.NewEnv()
	cluster := kvstore.New(kvstore.Config{
		Nodes:             cfg.Nodes,
		ReplicationFactor: cfg.ReplicationFactor,
		Seed:              cfg.Seed,
	}, env)

	// Bulk-load calibration data in immediate mode.
	loader := cluster.NewClient(nil)
	for _, beta := range cfg.Betas {
		payload := make([]byte, beta)
		for i := range payload {
			payload[i] = byte(i)
		}
		for p := 0; p < deepPrefixes; p++ {
			for i := 0; i < maxAlpha+1; i++ {
				loader.Put(calKey(beta, true, p, i), payload)
			}
		}
		for p := 0; p < shallowPrefixes; p++ {
			for i := 0; i < maxAlphaJ+1; i++ {
				loader.Put(calKey(beta, false, p, i), payload)
			}
		}
	}
	cluster.Rebalance()

	model := &Model{
		hists:     make(map[gridKey][]*Histogram),
		intervals: cfg.Intervals,
		alphas:    cfg.Alphas,
		alphaJs:   cfg.AlphaJs,
		betas:     cfg.Betas,
	}
	histFor := func(key gridKey, interval int) *Histogram {
		hs, ok := model.hists[key]
		if !ok {
			hs = make([]*Histogram, cfg.Intervals)
			for i := range hs {
				hs[i] = NewHistogram()
			}
			model.hists[key] = hs
		}
		return hs[interval]
	}

	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7E57))
	env.Spawn(func(p *sim.Proc) {
		cl := cluster.NewClient(p)
		for interval := 0; interval < cfg.Intervals; interval++ {
			intervalEnd := time.Duration(interval+1) * cfg.IntervalLength
			for rep := 0; rep < cfg.RepsPerInterval; rep++ {
				for _, beta := range cfg.Betas {
					for _, alpha := range cfg.Alphas {
						// Lookup(α, β): batched parallel random gets.
						keys := make([][]byte, alpha)
						for i := range keys {
							keys[i] = calKey(beta, false, rng.Intn(shallowPrefixes), rng.Intn(maxAlphaJ))
						}
						t0 := p.Now()
						cl.MultiGet(keys)
						histFor(gridKey{kind: KindLookup, alpha: alpha, beta: beta}, interval).Add(p.Now() - t0)

						// Scan(α, β): one contiguous range read.
						prefix := calPrefix(beta, true, rng.Intn(deepPrefixes))
						t0 = p.Now()
						cl.GetRange(kvstore.RangeRequest{Start: prefix, End: codec.PrefixEnd(prefix), Limit: alpha})
						histFor(gridKey{kind: KindScan, alpha: alpha, beta: beta}, interval).Add(p.Now() - t0)

						// SortedJoin(αc, αj, β): αc parallel bounded ranges.
						for _, alphaJ := range cfg.AlphaJs {
							fns := make([]func(*kvstore.Client), alpha)
							for i := range fns {
								pfx := calPrefix(beta, false, rng.Intn(shallowPrefixes))
								aj := alphaJ
								fns[i] = func(sub *kvstore.Client) {
									sub.GetRange(kvstore.RangeRequest{Start: pfx, End: codec.PrefixEnd(pfx), Limit: aj, Reverse: true})
								}
							}
							t0 = p.Now()
							cl.Parallel(fns...)
							histFor(gridKey{kind: KindSortedJoin, alpha: alpha, alphaJ: alphaJ, beta: beta}, interval).Add(p.Now() - t0)
						}
					}
				}
				// Spread the reps across the interval so samples see its
				// whole volatility window.
				if remaining := intervalEnd - p.Now(); remaining > 0 {
					p.Sleep(remaining / time.Duration(cfg.RepsPerInterval-rep))
				}
			}
			if p.Now() < intervalEnd {
				p.Sleep(intervalEnd - p.Now())
			}
		}
	})
	env.Run(0)
	env.Stop()
	return model, nil
}
