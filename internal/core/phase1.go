package core

import (
	"fmt"
	"strings"

	"piql/internal/parser"
)

// phase1 implements Algorithm 1 (StopOperatorPrepare): it finds a linear
// join ordering, performs predicate pushdown (predicates are attached to
// their relations by the binder), inserts data-stop operators wherever
// equality predicates cover a primary key or a declared cardinality
// constraint, and pushes each data-stop past every predicate other than
// the ones that caused its insertion.
//
// It returns the relations in join order with their access chains
// normalized to: abovePreds → DataStop(card) → belowPreds → Relation.
func phase1(q *boundQuery, edges []edge) ([]*rel, error) {
	order, err := joinOrder(q, edges)
	if err != nil {
		return nil, err
	}
	for i, r := range order {
		insertDataStop(r, i > 0)
	}
	return order, nil
}

// joinOrder picks a linear ordering (Line 1 of Algorithm 1): start from
// the most constrained relation and repeatedly append a relation joined
// to the prefix. Disconnected FROM lists (cartesian products) are
// rejected as inherently unbounded.
func joinOrder(q *boundQuery, edges []edge) ([]*rel, error) {
	n := len(q.rels)
	chosen := make([]bool, n)
	var order []*rel

	start := 0
	best := -1
	for i, r := range q.rels {
		s := accessScore(r)
		if s > best {
			best = s
			start = i
		}
	}
	chosen[start] = true
	order = append(order, q.rels[start])

	for len(order) < n {
		next := -1
		nextScore := -1
		for i, r := range q.rels {
			if chosen[i] {
				continue
			}
			if !connected(i, chosen, edges) {
				continue
			}
			if s := accessScore(r); s > nextScore {
				nextScore = s
				next = i
			}
		}
		if next < 0 {
			return nil, &NotScaleIndependentError{
				Query:   q.stmt.String(),
				Segment: "FROM " + q.stmt.From[0].String() + ", ...",
				Reason:  "the FROM clause contains relations with no join predicate connecting them (a cartesian product)",
				Suggestions: []string{
					"add an equality join predicate connecting every relation",
				},
			}
		}
		chosen[next] = true
		r := q.rels[next]
		orientEdges(q, r, next, chosen, edges)
		order = append(order, r)
	}
	return order, nil
}

// accessScore ranks how tightly a relation's own predicates bound it:
// full primary key (3) > cardinality constraint (2) > any equality (1).
func accessScore(r *rel) int {
	cols := eqColNames(r)
	switch {
	case len(cols) > 0 && r.table.IsPrimaryKey(cols):
		return 3
	case r.table.CardinalityFor(cols) > 0:
		return 2
	case len(r.eqPreds) > 0:
		return 1
	default:
		return 0
	}
}

// eqColNames returns the column names with simple equality or IN
// predicates (CONTAINS is excluded: a token match is not equality on the
// column, so it cannot satisfy key or cardinality coverage).
func eqColNames(r *rel) []string {
	var cols []string
	for _, p := range r.eqPreds {
		if p.Op == parser.OpEq {
			cols = append(cols, r.table.Columns[p.Col].Name)
		}
	}
	return cols
}

func connected(i int, chosen []bool, edges []edge) bool {
	for _, e := range edges {
		if (e.relA == i && chosen[e.relB]) || (e.relB == i && chosen[e.relA]) {
			return true
		}
	}
	return false
}

// orientEdges converts every edge between r (index ri) and an
// already-chosen relation into a joinPred on r.
func orientEdges(q *boundQuery, r *rel, ri int, chosen []bool, edges []edge) {
	for _, e := range edges {
		var myCol, otherRel, otherCol int
		switch {
		case e.relA == ri && chosen[e.relB] && e.relB != ri:
			myCol, otherRel, otherCol = e.colA, e.relB, e.colB
		case e.relB == ri && chosen[e.relA] && e.relA != ri:
			myCol, otherRel, otherCol = e.colB, e.relA, e.colA
		default:
			continue
		}
		or := q.rels[otherRel]
		r.joinPreds = append(r.joinPreds, joinPred{
			col:      myCol,
			name:     r.ref.Name() + "." + r.table.Columns[myCol].Name,
			outerCol: or.offset + otherCol,
			outerStr: or.ref.Name() + "." + or.table.Columns[otherCol].Name,
		})
	}
}

// insertDataStop implements Lines 3-12 of Algorithm 1 for one relation:
// if the relation's equality predicates (plus, for joined relations, its
// equi-join columns) cover the primary key or a cardinality constraint,
// a data-stop with the corresponding cardinality is inserted above the
// covering predicates, then pushed past all other predicates — which is
// legal precisely because the constraint bounds how many matching tuples
// can exist in the database, not how many the query wants.
func insertDataStop(r *rel, joined bool) {
	eqCols := eqColNames(r)
	if joined {
		for _, jp := range r.joinPreds {
			eqCols = append(eqCols, r.table.Columns[jp.col].Name)
		}
	}
	var coverCols []string
	card := 0
	if r.table.IsPrimaryKey(eqCols) {
		card = 1
		coverCols = r.table.PrimaryKey
	} else if c := r.table.CardinalityFor(eqCols); c > 0 {
		card = c
		coverCols = tightestConstraint(r, eqCols)
	}
	if card == 0 {
		// No data-stop: every predicate stays above the relation.
		r.abovePreds = append(append([]LocalPred{}, r.eqPreds...), r.otherPreds...)
		return
	}
	// IN-lists on covering columns multiply the bound: each list element
	// is a separate equality binding.
	for _, p := range r.eqPreds {
		if p.Op == parser.OpEq && p.InList != nil && containsFold(coverCols, r.table.Columns[p.Col].Name) {
			card = boundMul(card, len(p.InList))
		}
	}
	r.dataStopCard = card
	for _, p := range r.eqPreds {
		if p.Op == parser.OpEq && containsFold(coverCols, r.table.Columns[p.Col].Name) {
			r.belowPreds = append(r.belowPreds, p)
		} else {
			r.abovePreds = append(r.abovePreds, p)
		}
	}
	r.abovePreds = append(r.abovePreds, r.otherPreds...)
}

// tightestConstraint returns the column set of the smallest-limit
// constraint covered by eqCols (primary key handled by the caller).
func tightestConstraint(r *rel, eqCols []string) []string {
	bestLimit := 0
	var best []string
	for _, c := range r.table.Cardinalities {
		if coversAllFold(eqCols, c.Columns) && (bestLimit == 0 || c.Limit < bestLimit) {
			bestLimit = c.Limit
			best = c.Columns
		}
	}
	return best
}

func containsFold(xs []string, x string) bool {
	for _, v := range xs {
		if strings.EqualFold(v, x) {
			return true
		}
	}
	return false
}

func coversAllFold(have, want []string) bool {
	for _, w := range want {
		if !containsFold(have, w) {
			return false
		}
	}
	return true
}

// NotScaleIndependentError reports a query the compiler cannot bound,
// with Performance Insight Assistant feedback (Section 6.4): the
// offending plan segment and concrete suggestions.
type NotScaleIndependentError struct {
	Query       string
	Segment     string   // the problematic plan section
	Reason      string   // why it is unbounded
	Suggestions []string // assistant suggestions to make it bounded
}

func (e *NotScaleIndependentError) Error() string {
	msg := fmt.Sprintf("query is not scale-independent: %s (segment: %s)", e.Reason, e.Segment)
	for _, s := range e.Suggestions {
		msg += "\n  suggestion: " + s
	}
	return msg
}
