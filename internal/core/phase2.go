package core

import (
	"fmt"
	"strings"

	"piql/internal/parser"
	"piql/internal/schema"
)

// phase2 implements Algorithm 2 (PlanGenerate): it maps each relation's
// access chain onto one of the three bounded remote operators —
// PKLookup/IndexScan for the base relation, IndexFKJoin or
// SortedIndexJoin for joined relations — wrapping residual predicates,
// sort, stop, aggregation, and projection as local operators. Any
// section it cannot bound aborts compilation with assistant feedback.
type phase2Ctx struct {
	cat      *schema.Catalog
	q        *boundQuery
	order    []*rel
	required []*schema.Index
	ordered  bool // current plan emits rows in q.sort order
}

func phase2(cat *schema.Catalog, q *boundQuery, order []*rel) (Physical, []*schema.Index, error) {
	ctx := &phase2Ctx{cat: cat, q: q, order: order}
	plan, err := ctx.matchBase(order[0])
	if err != nil {
		return nil, nil, err
	}
	for _, r := range order[1:] {
		plan, err = ctx.matchJoin(plan, r)
		if err != nil {
			return nil, nil, err
		}
	}
	if len(q.sort) > 0 && !ctx.ordered {
		plan = &LocalSort{ChildPlan: plan, Keys: q.sort}
	}
	if len(q.aggs) > 0 {
		names := make([]string, len(q.aggs))
		for i, a := range q.aggs {
			names[i] = a.Name
		}
		plan = &LocalAgg{ChildPlan: plan, GroupBy: q.groupBy, Aggs: q.aggs, Names: names}
	}
	if q.stopK > 0 {
		plan = &LocalStop{ChildPlan: plan, K: q.stopK}
	}
	if len(q.aggs) == 0 {
		plan = &LocalProject{ChildPlan: plan, Cols: q.projCols, Names: q.projNames}
	}
	return plan, ctx.required, nil
}

// splitPreds partitions a relation's own predicates for access-path
// selection.
type predSplit struct {
	eqSimple []LocalPred         // col = const/param
	eqIn     []LocalPred         // col IN (...)
	token    []LocalPred         // col CONTAINS word
	ranges   map[int][]LocalPred // inequalities by column ordinal
	other    []LocalPred         // != and anything unusable for access
}

func splitPreds(r *rel) predSplit {
	s := predSplit{ranges: make(map[int][]LocalPred)}
	all := append(append([]LocalPred{}, r.eqPreds...), r.otherPreds...)
	for _, p := range all {
		switch {
		case p.Op == parser.OpEq && p.InList != nil:
			s.eqIn = append(s.eqIn, p)
		case p.Op == parser.OpEq:
			s.eqSimple = append(s.eqSimple, p)
		case p.Op == parser.OpContains:
			s.token = append(s.token, p)
		case p.Op == parser.OpLt || p.Op == parser.OpLe || p.Op == parser.OpGt || p.Op == parser.OpGe:
			s.ranges[p.Col] = append(s.ranges[p.Col], p)
		default:
			s.other = append(s.other, p)
		}
	}
	return s
}

// --- base relation access ---

func (ctx *phase2Ctx) matchBase(r *rel) (Physical, error) {
	split := splitPreds(r)

	// Case 1: equality (or IN) coverage of the full primary key —
	// bounded random lookups (Fig. 7's PIQL plan).
	if plan, ok := ctx.tryPKLookup(r, split); ok {
		return plan, nil
	}
	// Case 2: a data-stop bounds the matching tuples.
	if r.dataStopCard > 0 {
		return ctx.boundedIndexScan(r, split)
	}
	// Case 3: no schema bound; a stop with a fully index-expressible
	// predicate set still yields a bounded plan (Class I: fixed LIMIT
	// without joins). With joins, the stop may push below them only when
	// every later join is provably non-reductive (a declared foreign key
	// covering the target's primary key, with no extra predicates) — the
	// rule that admits the paper's search-by-title plan, where the stop
	// of 50 sits under the author join.
	if ctx.q.stopK > 0 && ctx.stopPushableToBase() {
		return ctx.limitHintScan(r, split)
	}
	return nil, ctx.unboundedRelation(r)
}

// stopPushableToBase reports whether the query-level stop may act as the
// base scan's limit hint: every subsequent relation must join 1:1
// through a declared foreign key (guaranteed existence, so the join
// never drops rows) and carry no predicates of its own.
func (ctx *phase2Ctx) stopPushableToBase() bool {
	for _, r := range ctx.order[1:] {
		if len(r.eqPreds) > 0 || len(r.otherPreds) > 0 {
			return false
		}
		// The join columns must cover r's full primary key...
		covered := make(map[string]bool)
		var outerCols []int
		for _, jp := range r.joinPreds {
			covered[strings.ToLower(r.colName(jp.col))] = true
			outerCols = append(outerCols, jp.outerCol)
		}
		for _, pk := range r.table.PrimaryKey {
			if !covered[strings.ToLower(pk)] {
				return false
			}
		}
		// ...and come from a declared FOREIGN KEY on the source relation.
		if !ctx.backedByForeignKey(r, outerCols) {
			return false
		}
	}
	return true
}

// backedByForeignKey reports whether the outer columns feeding the join
// into r are a declared foreign key referencing r's table.
func (ctx *phase2Ctx) backedByForeignKey(r *rel, outerCols []int) bool {
	for _, src := range ctx.order {
		if src == r {
			continue
		}
		for _, fk := range src.table.ForeignKeys {
			if !strings.EqualFold(fk.RefTable, r.table.Name) {
				continue
			}
			all := true
			for _, oc := range outerCols {
				ci := oc - src.offset
				if ci < 0 || ci >= len(src.table.Columns) {
					all = false
					break
				}
				if !containsFold(fk.Columns, src.table.Columns[ci].Name) {
					all = false
					break
				}
			}
			if all && len(outerCols) > 0 {
				return true
			}
		}
	}
	return false
}

// tryPKLookup matches equality predicates against the full primary key.
func (ctx *phase2Ctx) tryPKLookup(r *rel, split predSplit) (Physical, bool) {
	byCol := make(map[int]LocalPred)
	for _, p := range split.eqSimple {
		byCol[p.Col] = p
	}
	for _, p := range split.eqIn {
		byCol[p.Col] = p
	}
	keyed := make(map[int]bool)
	keys := []KeySpec{{}}
	for _, pk := range r.table.PrimaryKey {
		ci := r.table.ColumnIndex(pk)
		p, ok := byCol[ci]
		if !ok {
			return nil, false
		}
		keyed[ci] = true
		if p.InList == nil {
			for i := range keys {
				keys[i] = append(keys[i], p.RHS)
			}
			continue
		}
		// IN-list: cartesian expansion.
		expanded := make([]KeySpec, 0, len(keys)*len(p.InList))
		for _, k := range keys {
			for _, e := range p.InList {
				nk := make(KeySpec, len(k), len(k)+1)
				copy(nk, k)
				expanded = append(expanded, append(nk, e))
			}
		}
		keys = expanded
	}
	var residual []LocalPred
	for _, p := range append(append([]LocalPred{}, r.eqPreds...), r.otherPreds...) {
		if keyed[p.Col] && (p.Op == parser.OpEq) {
			continue
		}
		residual = append(residual, p)
	}
	plan := Physical(&PKLookup{Table: r.table, TableOffset: r.offset, Keys: keys, Residual: shiftPreds(residual, r.offset)})
	ctx.ordered = len(ctx.q.sort) == 0
	return plan, true
}

// boundedIndexScan builds the access path when a data-stop bounds the
// relation: an index over the constraint columns (extended with sort
// columns when that unlocks a limit hint), fetching at most the
// cardinality, with remaining predicates as a local selection — the
// paper's preferred shape, since it avoids indexing volatile attributes
// like SCADr's `approved` flag.
func (ctx *phase2Ctx) boundedIndexScan(r *rel, split predSplit) (Physical, error) {
	var fields []schema.IndexField
	var eq []KeyExpr
	for _, p := range r.belowPreds {
		if p.InList != nil {
			// IN over constraint columns: fall back to fetching the whole
			// per-element section; expansion handled via residual checks.
			return ctx.inExpandedScan(r, split)
		}
		fields = append(fields, schema.IndexField{Column: r.colName(p.Col)})
		eq = append(eq, p.RHS)
	}
	residual := append([]LocalPred{}, r.abovePreds...)

	limitHint := 0
	sortSatisfied := false
	if len(residual) == 0 {
		if sortCols, ok := ctx.sortOnRelation(r); ok {
			// Extend the index with the sort columns: the scan then
			// yields rows in query order and the stop becomes a fetch
			// limit.
			fields = append(fields, sortCols...)
			sortSatisfied = true
			if ctx.q.stopK > 0 {
				limitHint = boundMin(ctx.q.stopK, r.dataStopCard)
			}
		} else if len(ctx.q.sort) == 0 && ctx.q.stopK > 0 {
			limitHint = boundMin(ctx.q.stopK, r.dataStopCard)
		}
	}
	ix, reversed := ctx.ensureIndex(r.table, fields, len(eq))
	scan := &IndexScan{
		Table:        r.table,
		TableOffset:  r.offset,
		Index:        ix,
		Eq:           eq,
		Ascending:    !reversed,
		LimitHint:    limitHint,
		DataStopCard: r.dataStopCard,
		Residual:     shiftPreds(residual, r.offset),
		NeedDeref:    !ix.Primary,
	}
	ctx.ordered = sortSatisfied || len(ctx.q.sort) == 0
	return scan, nil
}

// inExpandedScan handles a data-stop whose covering predicates include an
// IN list: one bounded scan per list element, unioned. Modeled as a
// PKLookup-style expansion over the constraint prefix.
func (ctx *phase2Ctx) inExpandedScan(r *rel, split predSplit) (Physical, error) {
	return nil, &NotScaleIndependentError{
		Query:   ctx.q.stmt.String(),
		Segment: fmt.Sprintf("relation %s", r.ref.Name()),
		Reason:  "IN predicates over cardinality-constraint columns are only supported when the full primary key is covered",
		Suggestions: []string{
			"cover the full primary key with equality predicates so the IN list expands to bounded random lookups",
		},
	}
}

// limitHintScan builds a purely limit-hint-bounded scan: every predicate
// must be expressible as a contiguous index section.
func (ctx *phase2Ctx) limitHintScan(r *rel, split predSplit) (Physical, error) {
	if len(split.other) > 0 || len(split.eqIn) > 0 || len(split.token) > 1 || len(split.ranges) > 1 {
		return nil, ctx.unboundedRelation(r)
	}
	var fields []schema.IndexField
	var eq []KeyExpr
	for _, p := range split.token {
		fields = append(fields, schema.IndexField{Column: r.colName(p.Col), Token: true})
		eq = append(eq, p.RHS)
	}
	for _, p := range split.eqSimple {
		fields = append(fields, schema.IndexField{Column: r.colName(p.Col)})
		eq = append(eq, p.RHS)
	}
	// The single range column, if any.
	var rangeCol = -1
	var lower, upper *RangeBound
	for ci, preds := range split.ranges {
		rangeCol = ci
		for _, p := range preds {
			switch p.Op {
			case parser.OpGt:
				lower = &RangeBound{Expr: p.RHS}
			case parser.OpGe:
				lower = &RangeBound{Expr: p.RHS, Inclusive: true}
			case parser.OpLt:
				upper = &RangeBound{Expr: p.RHS}
			case parser.OpLe:
				upper = &RangeBound{Expr: p.RHS, Inclusive: true}
			}
		}
	}
	sortSatisfied := true
	if sortCols, ok := ctx.sortOnRelation(r); ok {
		// The range column, if present, must be the first sort column
		// (otherwise the matching entries are non-contiguous).
		if rangeCol >= 0 {
			first := ctx.q.sort[0]
			if first.Col != r.offset+rangeCol {
				return nil, ctx.unboundedRelation(r)
			}
		}
		fields = append(fields, sortCols...)
	} else if len(ctx.q.sort) > 0 {
		// Sort references other relations; with a bare limit hint we
		// cannot fetch "the right" K rows before sorting.
		return nil, ctx.unboundedRelation(r)
	} else if rangeCol >= 0 {
		fields = append(fields, schema.IndexField{Column: r.colName(rangeCol)})
	}
	ix, reversed := ctx.ensureIndex(r.table, fields, len(eq))
	scan := &IndexScan{
		Table:       r.table,
		TableOffset: r.offset,
		Index:       ix,
		Eq:          eq,
		Lower:       lower,
		Upper:       upper,
		Ascending:   !reversed,
		LimitHint:   ctx.q.stopK,
		NeedDeref:   !ix.Primary,
	}
	ctx.ordered = sortSatisfied
	return scan, nil
}

// --- joined relation access ---

func (ctx *phase2Ctx) matchJoin(child Physical, r *rel) (Physical, error) {
	if len(r.joinPreds) == 0 {
		return nil, &NotScaleIndependentError{
			Query:   ctx.q.stmt.String(),
			Segment: "relation " + r.ref.Name(),
			Reason:  "relation has no join predicate linking it to the rest of the plan",
			Suggestions: []string{
				"add an equality join predicate",
			},
		}
	}
	split := splitPreds(r)

	// IndexFKJoin: join columns (plus constant equalities) cover the
	// target primary key, so each child row matches at most one record.
	if plan, ok := ctx.tryFKJoin(child, r, split); ok {
		return plan, nil
	}
	// SortedIndexJoin (sort+stop flavor): the query's sort is entirely on
	// this relation and a stop exists; pre-sorted composite index entries
	// let us fetch only the top-K per join key.
	if plan, ok := ctx.trySortedJoin(child, r, split); ok {
		return plan, nil
	}
	// SortedIndexJoin (cardinality flavor): the schema bounds tuples per
	// join key; fetch them all and filter/sort locally.
	if r.dataStopCard > 0 {
		return ctx.cardBoundedJoin(child, r)
	}
	return nil, ctx.unboundedJoin(r)
}

func (ctx *phase2Ctx) tryFKJoin(child Physical, r *rel, split predSplit) (Physical, bool) {
	exprByCol := make(map[int]KeyExpr)
	for _, p := range split.eqSimple {
		exprByCol[p.Col] = p.RHS
	}
	for _, jp := range r.joinPreds {
		exprByCol[jp.col] = childColExpr(jp.outerCol, jp.outerStr)
	}
	var keys KeySpec
	used := make(map[int]bool)
	for _, pk := range r.table.PrimaryKey {
		ci := r.table.ColumnIndex(pk)
		e, ok := exprByCol[ci]
		if !ok {
			return nil, false
		}
		keys = append(keys, e)
		used[ci] = true
	}
	var residual []LocalPred
	for _, p := range append(append([]LocalPred{}, r.eqPreds...), r.otherPreds...) {
		if used[p.Col] && p.Op == parser.OpEq && p.InList == nil {
			continue
		}
		residual = append(residual, p)
	}
	// A 1:1 join preserves the child's ordering; ctx.ordered unchanged.
	return &IndexFKJoin{
		ChildPlan:   child,
		Table:       r.table,
		TableOffset: r.offset,
		Keys:        keys,
		Residual:    shiftPreds(residual, r.offset),
	}, true
}

// trySortedJoin matches the thoughtstream pattern: ORDER BY columns all
// on r, a stop above, and no residual predicates on r outside the index.
func (ctx *phase2Ctx) trySortedJoin(child Physical, r *rel, split predSplit) (Physical, bool) {
	if ctx.q.stopK == 0 || len(ctx.q.sort) == 0 {
		return nil, false
	}
	sortCols, ok := ctx.sortOnRelation(r)
	if !ok {
		return nil, false
	}
	// Residuals (IN lists, !=, inequalities, tokens) would invalidate the
	// per-key top-K shortcut.
	if len(split.eqIn) > 0 || len(split.token) > 0 || len(split.ranges) > 0 || len(split.other) > 0 {
		return nil, false
	}
	var fields []schema.IndexField
	var jk KeySpec
	for _, jp := range r.joinPreds {
		fields = append(fields, schema.IndexField{Column: r.colName(jp.col)})
		jk = append(jk, childColExpr(jp.outerCol, jp.outerStr))
	}
	for _, p := range split.eqSimple {
		fields = append(fields, schema.IndexField{Column: r.colName(p.Col)})
		jk = append(jk, p.RHS)
	}
	fields = append(fields, sortCols...)
	ix, reversed := ctx.ensureIndex(r.table, fields, len(jk))
	ctx.ordered = true
	return &SortedIndexJoin{
		ChildPlan:   child,
		Table:       r.table,
		TableOffset: r.offset,
		Index:       ix,
		JoinKey:     jk,
		PerKeyLimit: ctx.q.stopK,
		Ascending:   !reversed,
		MergeSort:   ctx.q.sort,
		NeedDeref:   !ix.Primary,
	}, true
}

// cardBoundedJoin fetches all (at most dataStopCard) matches per join
// key and applies the remaining predicates locally.
func (ctx *phase2Ctx) cardBoundedJoin(child Physical, r *rel) (Physical, error) {
	var fields []schema.IndexField
	var jk KeySpec
	seen := make(map[int]bool)
	for _, jp := range r.joinPreds {
		if seen[jp.col] {
			continue
		}
		seen[jp.col] = true
		fields = append(fields, schema.IndexField{Column: r.colName(jp.col)})
		jk = append(jk, childColExpr(jp.outerCol, jp.outerStr))
	}
	for _, p := range r.belowPreds {
		if seen[p.Col] || p.InList != nil {
			continue
		}
		seen[p.Col] = true
		fields = append(fields, schema.IndexField{Column: r.colName(p.Col)})
		jk = append(jk, p.RHS)
	}
	ix, reversed := ctx.ensureIndex(r.table, fields, len(jk))
	ctx.ordered = false // per-key fetch order is not the query order
	join := &SortedIndexJoin{
		ChildPlan:   child,
		Table:       r.table,
		TableOffset: r.offset,
		Index:       ix,
		JoinKey:     jk,
		PerKeyLimit: r.dataStopCard,
		Ascending:   !reversed,
		Residual:    shiftPreds(r.abovePreds, r.offset),
		NeedDeref:   !ix.Primary,
	}
	return join, nil
}

// --- helpers ---

// shiftPreds rebases relation-local predicate column indexes onto the
// combined row. Predicates attached to a rel during binding index the
// relation's own columns (phase I/II match them against the table), but
// an operator's Residual is evaluated at runtime against the combined
// row, where this relation's columns start at offset. Without the shift
// a residual on any relation other than the one at offset 0 silently
// compares the wrong column.
func shiftPreds(preds []LocalPred, offset int) []LocalPred {
	if offset == 0 || len(preds) == 0 {
		return preds
	}
	out := make([]LocalPred, len(preds))
	for i, p := range preds {
		p.Col += offset
		out[i] = p
	}
	return out
}

// sortOnRelation returns the ORDER BY columns as index fields when every
// sort column belongs to relation r.
func (ctx *phase2Ctx) sortOnRelation(r *rel) ([]schema.IndexField, bool) {
	if len(ctx.q.sort) == 0 {
		return nil, false
	}
	var fields []schema.IndexField
	for _, k := range ctx.q.sort {
		ci := k.Col - r.offset
		if ci < 0 || ci >= len(r.table.Columns) {
			return nil, false
		}
		fields = append(fields, schema.IndexField{Column: r.colName(ci), Desc: k.Desc})
	}
	return fields, true
}

// ensureIndex finds or registers an index serving the given fields, of
// which the first prefixLen components are bound by equality (their
// direction is irrelevant). An existing index — including the table's
// primary index — whose suffix directions are all inverted serves the
// same scan in reverse, e.g. thoughts' primary key (owner, timestamp)
// scanned backwards yields ORDER BY timestamp DESC per owner.
//
// Ready indexes are preferred over building ones: a building index is
// maintained by the write path but not yet fully backfilled, so a plan
// that selects it only runs after engine.ensureBuilt flips it ready.
func (ctx *phase2Ctx) ensureIndex(t *schema.Table, fields []schema.IndexField, prefixLen int) (*schema.Index, bool) {
	fields = ctx.completeWithPK(t, fields)
	var building *schema.Index
	var buildingRev bool
	for _, ix := range ctx.cat.Indexes(t.Name) {
		rev := false
		if !matchIndex(ix, fields, prefixLen, false) {
			if !matchIndex(ix, fields, prefixLen, true) {
				continue
			}
			rev = true
		}
		if ctx.cat.IndexState(ix) == schema.StateReady {
			ctx.noteRequired(ix)
			return ix, rev
		}
		if building == nil {
			building, buildingRev = ix, rev
		}
	}
	if building != nil {
		ctx.noteRequired(building)
		return building, buildingRev
	}
	name := fmt.Sprintf("auto_%s_%s", strings.ToLower(t.Name), fieldsSlug(fields))
	ix, err := ctx.cat.AddIndex(&schema.Index{Name: name, Table: t.Name, Fields: fields})
	if err != nil {
		// Field names were validated during binding; AddIndex cannot fail.
		panic(fmt.Sprintf("core: internal: %v", err))
	}
	ctx.noteRequired(ix)
	return ix, false
}

// matchIndex reports whether ix serves a scan over fields: identical
// columns/token flags throughout; equal suffix directions (or, with
// reversed, all-inverted suffix directions, served by a backward scan).
// Directions within the equality prefix never matter.
func matchIndex(ix *schema.Index, fields []schema.IndexField, prefixLen int, reversed bool) bool {
	if len(ix.Fields) != len(fields) {
		return false
	}
	for i, f := range fields {
		g := ix.Fields[i]
		if g.Token != f.Token || !strings.EqualFold(g.Column, f.Column) {
			return false
		}
		if i < prefixLen {
			continue
		}
		want := f.Desc
		if reversed {
			want = !want
		}
		if g.Desc != want {
			return false
		}
	}
	return true
}

// completeWithPK appends any missing primary key columns so index
// entries are unique and dereferenceable.
func (ctx *phase2Ctx) completeWithPK(t *schema.Table, fields []schema.IndexField) []schema.IndexField {
	have := make(map[string]bool)
	for _, f := range fields {
		if !f.Token {
			have[strings.ToLower(f.Column)] = true
		}
	}
	out := append([]schema.IndexField{}, fields...)
	for _, pk := range t.PrimaryKey {
		if !have[strings.ToLower(pk)] {
			out = append(out, schema.IndexField{Column: pk})
		}
	}
	return out
}

func fieldsSlug(fields []schema.IndexField) string {
	parts := make([]string, len(fields))
	for i, f := range fields {
		s := strings.ToLower(f.Column)
		if f.Token {
			s = "tok_" + s
		}
		if f.Desc {
			s += "_desc"
		}
		parts[i] = s
	}
	return strings.Join(parts, "_")
}

func (ctx *phase2Ctx) noteRequired(ix *schema.Index) {
	for _, e := range ctx.required {
		if e == ix {
			return
		}
	}
	ctx.required = append(ctx.required, ix)
}

// --- assistant feedback ---

func (ctx *phase2Ctx) unboundedRelation(r *rel) error {
	eqCols := eqColNames(r)
	sug := []string{}
	if len(eqCols) > 0 {
		sug = append(sug, fmt.Sprintf("add `CARDINALITY LIMIT n (%s)` to table %s so the matching tuples are bounded",
			strings.Join(eqCols, ", "), r.table.Name))
	}
	if ctx.q.stopK == 0 {
		sug = append(sug, "add a LIMIT or PAGINATE clause to bound the result size")
	}
	if hasOp(r, parser.OpLike) {
		sug = append(sug, "rewrite the LIKE predicate as a tokenized search with CONTAINS (served by an inverted full-text index)")
	}
	if hasOp(r, parser.OpNe) {
		sug = append(sug, "inequality (!=) predicates cannot bound an index section; combine them with a cardinality constraint")
	}
	if len(sug) == 0 {
		sug = append(sug, "add an equality predicate on an indexed column, plus a LIMIT or PAGINATE clause")
	}
	return &NotScaleIndependentError{
		Query:       ctx.q.stmt.String(),
		Segment:     fmt.Sprintf("access to relation %s (%s)", r.ref.Name(), describePreds(r)),
		Reason:      "the number of tuples produced by this relation has no compile-time bound",
		Suggestions: sug,
	}
}

func (ctx *phase2Ctx) unboundedJoin(r *rel) error {
	var joinCols []string
	for _, jp := range r.joinPreds {
		joinCols = append(joinCols, r.table.Columns[jp.col].Name)
	}
	sug := []string{
		fmt.Sprintf("add `CARDINALITY LIMIT n (%s)` to table %s to bound tuples per join key",
			strings.Join(joinCols, ", "), r.table.Name),
	}
	if ctx.q.stopK == 0 {
		sug = append(sug, "add a LIMIT or PAGINATE clause; with an ORDER BY on the joined relation the compiler can use a pre-sorted composite index (SortedIndexJoin)")
	}
	return &NotScaleIndependentError{
		Query:       ctx.q.stmt.String(),
		Segment:     fmt.Sprintf("join into relation %s on (%s)", r.ref.Name(), strings.Join(joinCols, ", ")),
		Reason:      "the number of tuples produced per join key has no compile-time bound",
		Suggestions: sug,
	}
}

func hasOp(r *rel, op parser.CompareOp) bool {
	for _, p := range append(append([]LocalPred{}, r.eqPreds...), r.otherPreds...) {
		if p.Op == op {
			return true
		}
	}
	return false
}

func describePreds(r *rel) string {
	var parts []string
	for _, p := range append(append([]LocalPred{}, r.eqPreds...), r.otherPreds...) {
		parts = append(parts, p.String())
	}
	if len(parts) == 0 {
		return "no predicates"
	}
	return strings.Join(parts, " AND ")
}
