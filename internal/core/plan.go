package core

import (
	"fmt"
	"strings"

	"piql/internal/parser"
	"piql/internal/schema"
)

// Plan is a compiled, scale-independent physical query plan.
type Plan struct {
	// Root is the physical operator tree.
	Root Physical
	// Stmt is the source statement.
	Stmt *parser.Select
	// NumParams is how many parameters the query takes.
	NumParams int
	// OutputNames are the result column names.
	OutputNames []string
	// RequiredIndexes are the secondary indexes the plan reads; the
	// engine must build (and backfill) any that are new (Section 5.3).
	RequiredIndexes []*schema.Index
	// PageSize is the PAGINATE page size (0 for non-paginated queries).
	PageSize int
	// RowWidth is the width of the combined row during execution.
	RowWidth int

	order       []*rel // join order, for explain output
	q           *boundQuery
	paginDriver int
}

// Compile runs the full PIQL compilation pipeline on a parsed SELECT:
// bind → Phase I (Algorithm 1) → Phase II (Algorithm 2) → static bound
// verification. New secondary indexes required by the plan are registered
// in the catalog; the caller (engine) must backfill them before running
// the plan.
func Compile(cat *schema.Catalog, stmt *parser.Select) (*Plan, error) {
	q, edges, err := bind(cat, stmt)
	if err != nil {
		return nil, err
	}
	order, err := phase1(q, edges)
	if err != nil {
		return nil, err
	}
	root, required, err := phase2(cat, q, order)
	if err != nil {
		return nil, err
	}
	b := root.Bounds()
	if b.Ops == Unbounded || b.Tuples == Unbounded {
		// Phase II only emits bounded operators; reaching this means a
		// compiler bug, not a user error.
		return nil, fmt.Errorf("core: internal: compiled plan is unbounded:\n%s", ExplainPhysical(root))
	}
	width := 0
	for _, r := range q.rels {
		width += len(r.table.Columns)
	}
	plan := &Plan{
		Root:            root,
		Stmt:            stmt,
		NumParams:       q.numParams,
		OutputNames:     q.projNames,
		RequiredIndexes: required,
		PageSize: func() int {
			if q.page {
				return q.stopK
			}
			return 0
		}(),
		RowWidth: width,
		order:    order,
		q:        q,
	}
	for i, op := range plan.RemoteOps() {
		if _, ok := op.(*SortedIndexJoin); ok {
			plan.paginDriver = i
		}
	}
	return plan, nil
}

// OpBound returns the static upper bound on key/value store operations
// for one execution of the plan (one page, for paginated queries) — the
// core scale-independence guarantee.
func (p *Plan) OpBound() int { return p.Root.Bounds().Ops }

// TupleBound returns the static upper bound on tuples flowing through
// the plan's widest remote cut.
func (p *Plan) TupleBound() int { return p.Root.Bounds().Tuples }

// Explain renders the physical plan with per-operator bounds.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- bound: %d key/value operations, %d tuples\n", p.OpBound(), p.TupleBound())
	sb.WriteString(ExplainPhysical(p.Root))
	return sb.String()
}

// ExplainPhysical renders a physical operator tree, one operator per
// line, children indented (remote operators are the indented leaves).
func ExplainPhysical(root Physical) string {
	var sb strings.Builder
	depth := 0
	for n := root; n != nil; n = n.Child() {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Label())
		b := n.Bounds()
		fmt.Fprintf(&sb, "   [tuples<=%s ops<=%s]\n", boundStr(b.Tuples), boundStr(b.Ops))
		depth++
	}
	return sb.String()
}

func boundStr(b int) string {
	if b == Unbounded {
		return "∞"
	}
	return fmt.Sprintf("%d", b)
}

// ExplainLogical renders the Phase I result — the logical plan after
// predicate pushdown and data-stop insertion, in the normal form of the
// paper's Figure 3(c).
func (p *Plan) ExplainLogical() string {
	var sb strings.Builder
	depth := 0
	line := func(s string) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(s)
		sb.WriteByte('\n')
		depth++
	}
	if p.q.stopK > 0 {
		kind := "Stop"
		if p.q.page {
			kind = "PageStop"
		}
		line(fmt.Sprintf("%s %d", kind, p.q.stopK))
	}
	if len(p.q.aggs) > 0 {
		names := make([]string, len(p.q.aggs))
		for i, a := range p.q.aggs {
			names[i] = a.Name
		}
		line("Aggregate " + strings.Join(names, ", "))
	}
	if len(p.q.sort) > 0 {
		keys := make([]string, len(p.q.sort))
		for i, k := range p.q.sort {
			keys[i] = k.String()
		}
		line("Sort " + strings.Join(keys, ", "))
	}
	// Joins nest left-deep: render from the last join downward.
	for i := len(p.order) - 1; i >= 1; i-- {
		r := p.order[i]
		preds := make([]string, len(r.joinPreds))
		for j, jp := range r.joinPreds {
			preds[j] = jp.String()
		}
		line(fmt.Sprintf("Join %s (%s)", r.ref.Name(), strings.Join(preds, " AND ")))
		renderChain(&sb, depth, r)
	}
	renderChain(&sb, depth, p.order[0])
	return sb.String()
}

// renderChain renders one relation's access chain:
// abovePreds → DataStop → belowPreds → Relation.
func renderChain(sb *strings.Builder, depth int, r *rel) {
	line := func(s string) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(s)
		sb.WriteByte('\n')
		depth++
	}
	if len(r.abovePreds) > 0 {
		line("Selection " + predsStr(r.abovePreds))
	}
	if r.dataStopCard > 0 {
		line(fmt.Sprintf("DataStop %d", r.dataStopCard))
	}
	if len(r.belowPreds) > 0 {
		line("Selection " + predsStr(r.belowPreds))
	}
	line("Relation " + r.ref.String())
}

// RemoteOps returns the remote operators of the plan from the leaf
// upward; the SLO prediction model composes per-operator latency
// distributions in this order.
func (p *Plan) RemoteOps() []Physical {
	var out []Physical
	for n := p.Root; n != nil; n = n.Child() {
		switch n.(type) {
		case *PKLookup, *IndexScan, *IndexFKJoin, *SortedIndexJoin:
			out = append(out, n)
		}
	}
	// Reverse: leaf (executed first) comes first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// PaginationDriver returns the ordinal (leaf first, matching RemoteOps)
// of the remote operator that drives pagination: the last
// SortedIndexJoin (it re-merges output order, so only its per-key
// positions advance between pages — the child scan re-runs in full each
// page), or the base scan otherwise. Cached at compile time so the
// executor's hot path does not re-walk the operator tree per execution.
func (p *Plan) PaginationDriver() int { return p.paginDriver }

// Tables returns the tables referenced by the plan in join order.
func (p *Plan) Tables() []*schema.Table {
	out := make([]*schema.Table, len(p.order))
	for i, r := range p.order {
		out[i] = r.table
	}
	return out
}

// GroupBy exposes the aggregate grouping columns for the executor.
func (p *Plan) GroupBy() []int { return p.q.groupBy }

// Aggs exposes the aggregate outputs for the executor.
func (p *Plan) Aggs() []AggSpec { return p.q.aggs }

// SortKeys exposes the resolved ORDER BY for cursor serialization.
func (p *Plan) SortKeys() []SortKey { return p.q.sort }
