package core

import (
	"fmt"
	"strings"

	"piql/internal/parser"
	"piql/internal/schema"
	"piql/internal/value"
)

// edge is an undirected equi-join predicate between two relations, held
// until Phase I picks a join order (which orients it).
type edge struct {
	relA, colA int
	relB, colB int
}

// binder resolves a parsed SELECT against the catalog.
type binder struct {
	cat    *schema.Catalog
	stmt   *parser.Select
	rels   []*rel
	byName map[string]int // alias/table (lower) -> rel index

	edges     []edge
	numParams int
}

// bind produces a boundQuery plus the undirected join edges.
func bind(cat *schema.Catalog, stmt *parser.Select) (*boundQuery, []edge, error) {
	b := &binder{cat: cat, stmt: stmt, byName: make(map[string]int)}
	if err := b.bindFrom(); err != nil {
		return nil, nil, err
	}
	if err := b.bindWhere(); err != nil {
		return nil, nil, err
	}
	q := &boundQuery{stmt: stmt, rels: b.rels}
	if err := b.bindProjection(q); err != nil {
		return nil, nil, err
	}
	if err := b.bindOrderAndStop(q); err != nil {
		return nil, nil, err
	}
	q.numParams = b.numParams
	return q, b.edges, nil
}

func (b *binder) bindFrom() error {
	if len(b.stmt.From) == 0 {
		return fmt.Errorf("core: query has no FROM clause")
	}
	offset := 0
	for _, ref := range b.stmt.From {
		t := b.cat.Table(ref.Table)
		if t == nil {
			return fmt.Errorf("core: unknown table %q", ref.Table)
		}
		name := strings.ToLower(ref.Name())
		if _, dup := b.byName[name]; dup {
			return fmt.Errorf("core: duplicate table name or alias %q", ref.Name())
		}
		b.byName[name] = len(b.rels)
		b.rels = append(b.rels, &rel{ref: ref, table: t, offset: offset})
		offset += len(t.Columns)
	}
	return nil
}

// resolveColumn finds (relIdx, colIdx) for a column reference.
func (b *binder) resolveColumn(c parser.ColumnRef) (int, int, error) {
	if c.Table != "" {
		ri, ok := b.byName[strings.ToLower(c.Table)]
		if !ok {
			return 0, 0, fmt.Errorf("core: unknown table or alias %q", c.Table)
		}
		ci := b.rels[ri].table.ColumnIndex(c.Column)
		if ci < 0 {
			return 0, 0, fmt.Errorf("core: column %q does not exist in %q", c.Column, b.rels[ri].ref.Name())
		}
		return ri, ci, nil
	}
	foundRel, foundCol := -1, -1
	for ri, r := range b.rels {
		if ci := r.table.ColumnIndex(c.Column); ci >= 0 {
			if foundRel >= 0 {
				return 0, 0, fmt.Errorf("core: column %q is ambiguous (in %q and %q)",
					c.Column, b.rels[foundRel].ref.Name(), r.ref.Name())
			}
			foundRel, foundCol = ri, ci
		}
	}
	if foundRel < 0 {
		return 0, 0, fmt.Errorf("core: unknown column %q", c.Column)
	}
	return foundRel, foundCol, nil
}

// combined returns the combined-row index for (relIdx, colIdx).
func (b *binder) combined(ri, ci int) int { return b.rels[ri].offset + ci }

func (b *binder) colDisplay(ri, ci int) string {
	return b.rels[ri].ref.Name() + "." + b.rels[ri].table.Columns[ci].Name
}

func (b *binder) bindWhere() error {
	for _, p := range b.stmt.Where {
		ri, ci, err := b.resolveColumn(p.Left)
		if err != nil {
			return err
		}
		// Column-to-column comparison: a join edge (must be equality).
		if rc, ok := p.Right.(parser.ColumnRef); ok {
			rj, cj, err := b.resolveColumn(rc)
			if err != nil {
				return err
			}
			if ri == rj {
				return fmt.Errorf("core: predicate %s compares two columns of the same relation; not supported", p)
			}
			if p.Op != parser.OpEq {
				return fmt.Errorf("core: non-equality join predicate %s is not scale-independent", p)
			}
			b.edges = append(b.edges, edge{relA: ri, colA: ci, relB: rj, colB: cj})
			continue
		}
		lp, err := b.bindLocalPred(ri, ci, p)
		if err != nil {
			return err
		}
		r := b.rels[ri]
		if lp.Op == parser.OpEq || lp.Op == parser.OpContains {
			r.eqPreds = append(r.eqPreds, lp)
		} else {
			r.otherPreds = append(r.otherPreds, lp)
		}
	}
	return nil
}

func (b *binder) bindLocalPred(ri, ci int, p parser.Predicate) (LocalPred, error) {
	col := b.rels[ri].table.Columns[ci]
	lp := LocalPred{Col: ci, Name: b.colDisplay(ri, ci), Op: p.Op}
	if p.InList != nil {
		for _, e := range p.InList {
			ke, err := b.bindKeyExpr(e, col)
			if err != nil {
				return LocalPred{}, fmt.Errorf("core: in predicate %s: %w", p, err)
			}
			lp.InList = append(lp.InList, ke)
		}
		return lp, nil
	}
	if p.Op == parser.OpContains && col.Type != value.TypeString {
		return LocalPred{}, fmt.Errorf("core: CONTAINS requires a string column, %s is %s", lp.Name, col.Type)
	}
	ke, err := b.bindKeyExpr(p.Right, col)
	if err != nil {
		return LocalPred{}, fmt.Errorf("core: predicate %s: %w", p, err)
	}
	lp.RHS = ke
	return lp, nil
}

// bindKeyExpr binds a literal or parameter, type-checking literals
// against the column.
func (b *binder) bindKeyExpr(e parser.Expr, col schema.Column) (KeyExpr, error) {
	switch e := e.(type) {
	case parser.Literal:
		v := e.Val
		// Integer literals widen to float columns.
		if col.Type == value.TypeFloat && v.T == value.TypeInt {
			v = value.Float(float64(v.I))
		}
		if !v.IsNull() && v.T != col.Type {
			return KeyExpr{}, fmt.Errorf("type mismatch: column %q is %s, literal is %s", col.Name, col.Type, v.T)
		}
		return constExpr(v), nil
	case parser.Param:
		if e.Index > b.numParams {
			b.numParams = e.Index
		}
		return paramExpr(e), nil
	case parser.ColumnRef:
		return KeyExpr{}, fmt.Errorf("column reference %s not allowed here", e)
	default:
		return KeyExpr{}, fmt.Errorf("unsupported expression %s", e)
	}
}

func (b *binder) bindProjection(q *boundQuery) error {
	hasAgg := false
	for _, it := range b.stmt.Items {
		if it.Agg != parser.AggNone {
			hasAgg = true
		}
	}
	if hasAgg {
		return b.bindAggProjection(q)
	}
	for _, it := range b.stmt.Items {
		switch {
		case it.Star && it.StarOf == "":
			for ri, r := range b.rels {
				for ci, c := range r.table.Columns {
					q.projCols = append(q.projCols, b.combined(ri, ci))
					q.projNames = append(q.projNames, c.Name)
				}
			}
		case it.Star:
			ri, ok := b.byName[strings.ToLower(it.StarOf)]
			if !ok {
				return fmt.Errorf("core: unknown table or alias %q in %s.*", it.StarOf, it.StarOf)
			}
			for ci, c := range b.rels[ri].table.Columns {
				q.projCols = append(q.projCols, b.combined(ri, ci))
				q.projNames = append(q.projNames, c.Name)
			}
		default:
			ri, ci, err := b.resolveColumn(it.Col)
			if err != nil {
				return err
			}
			name := it.Alias
			if name == "" {
				name = b.rels[ri].table.Columns[ci].Name
			}
			q.projCols = append(q.projCols, b.combined(ri, ci))
			q.projNames = append(q.projNames, name)
		}
	}
	return nil
}

func (b *binder) bindAggProjection(q *boundQuery) error {
	for _, g := range b.stmt.GroupBy {
		ri, ci, err := b.resolveColumn(g)
		if err != nil {
			return err
		}
		q.groupBy = append(q.groupBy, b.combined(ri, ci))
	}
	for _, it := range b.stmt.Items {
		switch {
		case it.Agg == parser.AggNone && !it.Star:
			ri, ci, err := b.resolveColumn(it.Col)
			if err != nil {
				return err
			}
			idx := b.combined(ri, ci)
			if !containsInt(q.groupBy, idx) {
				return fmt.Errorf("core: column %s must appear in GROUP BY or an aggregate", it.Col)
			}
			name := it.Alias
			if name == "" {
				name = b.rels[ri].table.Columns[ci].Name
			}
			q.aggs = append(q.aggs, AggSpec{Kind: parser.AggNone, Col: idx, Name: name})
		case it.Star:
			return fmt.Errorf("core: SELECT * cannot be combined with aggregates")
		case it.AggStar:
			name := it.Alias
			if name == "" {
				name = "count"
			}
			q.aggs = append(q.aggs, AggSpec{Kind: it.Agg, Col: -1, Name: name})
		default:
			ri, ci, err := b.resolveColumn(it.Col)
			if err != nil {
				return err
			}
			name := it.Alias
			if name == "" {
				name = strings.ToLower(it.Agg.String()) + "_" + b.rels[ri].table.Columns[ci].Name
			}
			q.aggs = append(q.aggs, AggSpec{Kind: it.Agg, Col: b.combined(ri, ci), Name: name})
		}
	}
	for _, a := range q.aggs {
		q.projNames = append(q.projNames, a.Name)
	}
	return nil
}

func (b *binder) bindOrderAndStop(q *boundQuery) error {
	for _, o := range b.stmt.OrderBy {
		ri, ci, err := b.resolveColumn(o.Col)
		if err != nil {
			return err
		}
		q.sort = append(q.sort, SortKey{
			Col:  b.combined(ri, ci),
			Name: b.colDisplay(ri, ci),
			Desc: o.Desc,
		})
	}
	switch {
	case b.stmt.Limit > 0:
		q.stopK = b.stmt.Limit
	case b.stmt.Paginate > 0:
		q.stopK = b.stmt.Paginate
		q.page = true
	}
	return nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
