package core

import (
	"errors"
	"strings"
	"testing"

	"piql/internal/parser"
	"piql/internal/schema"
)

// scadrCatalog builds the SCADr schema from Section 8.1.2: users,
// subscriptions (with the paper's cardinality limit), thoughts.
func scadrCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	cat := schema.NewCatalog()
	ddls := []string{
		`CREATE TABLE users (
			username VARCHAR(20),
			password VARCHAR(20),
			hometown VARCHAR(30),
			PRIMARY KEY (username)
		)`,
		`CREATE TABLE subscriptions (
			owner VARCHAR(20),
			target VARCHAR(20),
			approved BOOLEAN,
			PRIMARY KEY (owner, target),
			FOREIGN KEY (target) REFERENCES users,
			CARDINALITY LIMIT 100 (owner)
		)`,
		`CREATE TABLE thoughts (
			owner VARCHAR(20),
			timestamp INT,
			text VARCHAR(140),
			PRIMARY KEY (owner, timestamp)
		)`,
	}
	for _, ddl := range ddls {
		stmt, err := parser.Parse(ddl)
		if err != nil {
			t.Fatalf("parse DDL: %v", err)
		}
		if err := cat.AddTable(stmt.(*parser.CreateTable).Table); err != nil {
			t.Fatalf("add table: %v", err)
		}
	}
	return cat
}

func compile(t *testing.T, cat *schema.Catalog, src string) *Plan {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := Compile(cat, stmt.(*parser.Select))
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return plan
}

func compileErr(t *testing.T, cat *schema.Catalog, src string) *NotScaleIndependentError {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Compile(cat, stmt.(*parser.Select))
	if err == nil {
		t.Fatalf("compile %q succeeded, want scale-independence error", src)
	}
	var nsi *NotScaleIndependentError
	if !errors.As(err, &nsi) {
		t.Fatalf("compile %q: error %v is not a NotScaleIndependentError", src, err)
	}
	return nsi
}

const thoughtstreamSQL = `
	SELECT thoughts.*
	FROM subscriptions s JOIN thoughts
	WHERE thoughts.owner = s.target
	  AND s.owner = [1: uname]
	  AND s.approved = true
	ORDER BY thoughts.timestamp DESC
	LIMIT 10`

// TestThoughtstreamPlan reproduces the Figure 3 compilation end to end.
func TestThoughtstreamPlan(t *testing.T) {
	cat := scadrCatalog(t)
	plan := compile(t, cat, thoughtstreamSQL)

	// Physical shape (Fig. 3d): Project → Stop 10 → SortedIndexJoin →
	// IndexScan(subscriptions, residual approved).
	proj, ok := plan.Root.(*LocalProject)
	if !ok {
		t.Fatalf("root = %T", plan.Root)
	}
	stop, ok := proj.Child().(*LocalStop)
	if !ok || stop.K != 10 {
		t.Fatalf("below project: %s", proj.Child().Label())
	}
	join, ok := stop.Child().(*SortedIndexJoin)
	if !ok {
		t.Fatalf("below stop: %s", stop.Child().Label())
	}
	if join.PerKeyLimit != 10 {
		t.Errorf("SortedIndexJoin limit hint = %d, want 10", join.PerKeyLimit)
	}
	if join.Ascending {
		t.Error("timestamp DESC should scan the (owner, timestamp) primary index in reverse")
	}
	if !join.Index.Primary {
		t.Errorf("join should reuse thoughts' primary index, got %s", join.Index)
	}
	if join.NeedDeref {
		t.Error("primary-index join must not dereference")
	}
	scan, ok := join.Child().(*IndexScan)
	if !ok {
		t.Fatalf("join child: %s", join.Child().Label())
	}
	if scan.DataStopCard != 100 {
		t.Errorf("subscriptions data-stop card = %d, want 100", scan.DataStopCard)
	}
	if len(scan.Residual) != 1 || !strings.Contains(scan.Residual[0].String(), "approved") {
		t.Errorf("approved should be a residual local selection, got %v", scan.Residual)
	}
	if !scan.Index.Primary {
		t.Errorf("subscriptions scan should use the (owner, target) primary index, got %s", scan.Index)
	}

	// Static bounds: 1 range request + 100 sorted-join range requests;
	// tuples: 100 subs × 10 thoughts before the stop.
	if got := plan.OpBound(); got != 101 {
		t.Errorf("OpBound = %d, want 101", got)
	}
	if got := plan.TupleBound(); got != 10 {
		t.Errorf("TupleBound = %d, want 10 (after stop)", got)
	}
}

// TestThoughtstreamLogicalExplain checks the Phase I normal form from
// Fig. 3(c): the data-stop sits below `approved` and above `owner =`.
func TestThoughtstreamLogicalExplain(t *testing.T) {
	cat := scadrCatalog(t)
	plan := compile(t, cat, thoughtstreamSQL)
	logical := plan.ExplainLogical()
	above := strings.Index(logical, "approved")
	ds := strings.Index(logical, "DataStop 100")
	below := strings.Index(logical, "Selection s.owner =")
	if above < 0 || ds < 0 || below < 0 {
		t.Fatalf("logical explain missing pieces:\n%s", logical)
	}
	if !(above < ds && ds < below) {
		t.Errorf("data-stop not pushed past the approved predicate:\n%s", logical)
	}
}

// TestThoughtstreamWithoutCardinalityRejected reproduces the assistant
// interaction from Section 6.4: drop the constraint and the compiler
// must reject the query, pointing at subscriptions.
func TestThoughtstreamWithoutCardinalityRejected(t *testing.T) {
	cat := schema.NewCatalog()
	for _, ddl := range []string{
		`CREATE TABLE users (username VARCHAR(20), PRIMARY KEY (username))`,
		`CREATE TABLE subscriptions (owner VARCHAR(20), target VARCHAR(20), approved BOOLEAN, PRIMARY KEY (owner, target))`,
		`CREATE TABLE thoughts (owner VARCHAR(20), timestamp INT, text VARCHAR(140), PRIMARY KEY (owner, timestamp))`,
	} {
		stmt, _ := parser.Parse(ddl)
		if err := cat.AddTable(stmt.(*parser.CreateTable).Table); err != nil {
			t.Fatal(err)
		}
	}
	nsi := compileErr(t, cat, thoughtstreamSQL)
	if !strings.Contains(nsi.Segment, "subscriptions") && !strings.Contains(nsi.Segment, "s") {
		t.Errorf("segment should point at subscriptions: %q", nsi.Segment)
	}
	found := false
	for _, s := range nsi.Suggestions {
		if strings.Contains(s, "CARDINALITY LIMIT") {
			found = true
		}
	}
	if !found {
		t.Errorf("assistant should suggest a cardinality limit: %v", nsi.Suggestions)
	}
}

// TestSubscriberIntersectionPlan: the Section 8.3 query compiles to
// bounded random lookups (PKLookup) with one key per IN element.
func TestSubscriberIntersectionPlan(t *testing.T) {
	cat := scadrCatalog(t)
	plan := compile(t, cat, `
		SELECT * FROM subscriptions
		WHERE target = [1: targetUser]
		  AND owner IN ([2: f1], [3: f2], [4: f3], [5: f4], [6: f5])`)
	proj := plan.Root.(*LocalProject)
	lk, ok := proj.Child().(*PKLookup)
	if !ok {
		t.Fatalf("expected PKLookup, got %s", proj.Child().Label())
	}
	if len(lk.Keys) != 5 {
		t.Errorf("keys = %d, want 5", len(lk.Keys))
	}
	if got := plan.OpBound(); got != 5 {
		t.Errorf("OpBound = %d, want 5", got)
	}
}

// TestFindUserPlan: single-record lookup by primary key (Class I).
func TestFindUserPlan(t *testing.T) {
	cat := scadrCatalog(t)
	plan := compile(t, cat, `SELECT * FROM users WHERE username = [1: u]`)
	if _, ok := plan.Root.(*LocalProject).Child().(*PKLookup); !ok {
		t.Fatalf("plan:\n%s", plan.Explain())
	}
	if plan.OpBound() != 1 {
		t.Errorf("OpBound = %d, want 1", plan.OpBound())
	}
}

// TestRecentThoughtsPlan: prefix scan over the primary index in reverse,
// bounded purely by the PAGINATE stop.
func TestRecentThoughtsPlan(t *testing.T) {
	cat := scadrCatalog(t)
	plan := compile(t, cat, `
		SELECT * FROM thoughts WHERE owner = [1: u]
		ORDER BY timestamp DESC PAGINATE 10`)
	scan, ok := plan.Root.(*LocalProject).Child().(*LocalStop).Child().(*IndexScan)
	if !ok {
		t.Fatalf("plan:\n%s", plan.Explain())
	}
	if scan.LimitHint != 10 || scan.Ascending || !scan.Index.Primary || scan.NeedDeref {
		t.Errorf("scan = %s", scan.Label())
	}
	if plan.PageSize != 10 {
		t.Errorf("PageSize = %d", plan.PageSize)
	}
	if plan.OpBound() != 1 {
		t.Errorf("OpBound = %d, want 1", plan.OpBound())
	}
}

// TestUsersFollowedPlan: subscriptions by owner joined FK-style to users.
func TestUsersFollowedPlan(t *testing.T) {
	cat := scadrCatalog(t)
	plan := compile(t, cat, `
		SELECT u.* FROM subscriptions s JOIN users u
		WHERE u.username = s.target AND s.owner = [1: me]`)
	proj := plan.Root.(*LocalProject)
	fk, ok := proj.Child().(*IndexFKJoin)
	if !ok {
		t.Fatalf("expected IndexFKJoin, got %s", proj.Child().Label())
	}
	scan, ok := fk.Child().(*IndexScan)
	if !ok || scan.DataStopCard != 100 {
		t.Fatalf("join child: %s", fk.Child().Label())
	}
	// 1 range + 100 dereferencing gets.
	if got := plan.OpBound(); got != 101 {
		t.Errorf("OpBound = %d, want 101", got)
	}
}

// TestTokenSearchPlan reproduces the Section 5.3 index selection: the
// compiler derives Items(Token(I_TITLE), I_TITLE, I_ID) for the search-
// by-title query.
func TestTokenSearchPlan(t *testing.T) {
	cat := schema.NewCatalog()
	for _, ddl := range []string{
		`CREATE TABLE author (a_id INT, a_fname VARCHAR(20), a_lname VARCHAR(20), PRIMARY KEY (a_id))`,
		`CREATE TABLE item (i_id INT, i_a_id INT, i_title VARCHAR(60), i_pub_date INT, i_subject VARCHAR(60),
			PRIMARY KEY (i_id), FOREIGN KEY (i_a_id) REFERENCES author)`,
	} {
		stmt, _ := parser.Parse(ddl)
		if err := cat.AddTable(stmt.(*parser.CreateTable).Table); err != nil {
			t.Fatal(err)
		}
	}
	plan := compile(t, cat, `
		SELECT i_title, i_id, a_fname, a_lname
		FROM item JOIN author
		WHERE i_a_id = a_id AND i_title CONTAINS [1: titleWord]
		ORDER BY i_title
		LIMIT 50`)
	// The base scan must use a token index with i_title then i_id.
	var scan *IndexScan
	for n := plan.Root; n != nil; n = n.Child() {
		if s, ok := n.(*IndexScan); ok {
			scan = s
		}
	}
	if scan == nil {
		t.Fatalf("no IndexScan in plan:\n%s", plan.Explain())
	}
	sig := scan.Index.String()
	if !strings.Contains(sig, "Token(i_title)") || !strings.Contains(sig, "i_id") {
		t.Errorf("index = %s, want Token(i_title), i_title, i_id", sig)
	}
	if scan.LimitHint != 50 {
		t.Errorf("limit hint = %d, want 50", scan.LimitHint)
	}
	// 1 range request + 50 dereferencing gets + 50 author gets.
	if got := plan.OpBound(); got != 101 {
		t.Errorf("OpBound = %d, want 101", got)
	}
	var fk *IndexFKJoin
	for n := plan.Root; n != nil; n = n.Child() {
		if j, ok := n.(*IndexFKJoin); ok {
			fk = j
		}
	}
	if fk == nil {
		t.Fatalf("no IndexFKJoin in plan:\n%s", plan.Explain())
	}
}

func TestLimitWithoutJoinIsClassI(t *testing.T) {
	cat := scadrCatalog(t)
	// Fixed LIMIT, no joins, no predicates: bounded (Class I).
	plan := compile(t, cat, `SELECT * FROM users LIMIT 25`)
	if plan.OpBound() == Unbounded || plan.TupleBound() != 25 {
		t.Errorf("bounds = %d ops, %d tuples", plan.OpBound(), plan.TupleBound())
	}
}

func TestRejections(t *testing.T) {
	cat := scadrCatalog(t)
	cases := []struct {
		src     string
		wantSug string // substring expected in some suggestion
	}{
		{`SELECT * FROM users`, "PAGINATE"},
		{`SELECT * FROM thoughts WHERE owner = [1: u]`, "LIMIT"},
		{`SELECT * FROM users WHERE hometown = 'SF'`, "CARDINALITY LIMIT"},
		{`SELECT * FROM users WHERE username LIKE 'bob%' LIMIT 5`, "CONTAINS"},
		{`SELECT * FROM users, thoughts LIMIT 5`, "join predicate"},
		{`SELECT * FROM thoughts WHERE owner != 'x' LIMIT 5`, ""},
	}
	for _, c := range cases {
		nsi := compileErr(t, cat, c.src)
		if c.wantSug == "" {
			continue
		}
		found := false
		for _, s := range nsi.Suggestions {
			if strings.Contains(s, c.wantSug) {
				found = true
			}
		}
		if !found {
			t.Errorf("%q: suggestions %v missing %q", c.src, nsi.Suggestions, c.wantSug)
		}
	}
}

func TestIndexReuseAcrossCompiles(t *testing.T) {
	cat := scadrCatalog(t)
	p1 := compile(t, cat, `SELECT * FROM users WHERE hometown = 'SF' AND username = 'x'`)
	before := len(cat.Indexes("users"))
	p2 := compile(t, cat, `SELECT * FROM users WHERE hometown = 'SF' AND username = 'x'`)
	after := len(cat.Indexes("users"))
	if before != after {
		t.Errorf("recompilation created %d new indexes", after-before)
	}
	_ = p1
	_ = p2
}

func TestAggregateOverBoundedInput(t *testing.T) {
	cat := scadrCatalog(t)
	plan := compile(t, cat, `
		SELECT COUNT(*) FROM subscriptions WHERE owner = [1: u]`)
	if _, ok := plan.Root.(*LocalStop); ok {
		t.Fatal("no stop expected")
	}
	agg, ok := plan.Root.(*LocalAgg)
	if !ok {
		t.Fatalf("root = %T", plan.Root)
	}
	if _, ok := agg.Child().(*IndexScan); !ok {
		t.Fatalf("agg child = %s", agg.Child().Label())
	}
	if plan.OpBound() == Unbounded {
		t.Error("aggregate plan unbounded")
	}
}

func TestExplainOutputs(t *testing.T) {
	cat := scadrCatalog(t)
	plan := compile(t, cat, thoughtstreamSQL)
	phys := plan.Explain()
	for _, want := range []string{"SortedIndexJoin", "IndexScan", "Stop(10)", "bound: 101"} {
		if !strings.Contains(phys, want) {
			t.Errorf("physical explain missing %q:\n%s", want, phys)
		}
	}
	logical := plan.ExplainLogical()
	for _, want := range []string{"Stop 10", "Sort", "Join", "DataStop 100", "Relation subscriptions"} {
		if !strings.Contains(logical, want) {
			t.Errorf("logical explain missing %q:\n%s", want, logical)
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("The Quick-Brown fox_2, jumps!")
	want := []string{"the", "quick", "brown", "fox_2", "jumps"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
	if toks := Tokenize(""); len(toks) != 0 {
		t.Errorf("empty tokenize = %v", toks)
	}
}

func TestInequalityRangeScan(t *testing.T) {
	cat := scadrCatalog(t)
	plan := compile(t, cat, `
		SELECT * FROM thoughts
		WHERE owner = [1: u] AND timestamp > 1000
		ORDER BY timestamp DESC LIMIT 5`)
	scan, ok := plan.Root.(*LocalProject).Child().(*LocalStop).Child().(*IndexScan)
	if !ok {
		t.Fatalf("plan:\n%s", plan.Explain())
	}
	if scan.Lower == nil {
		t.Fatal("missing lower bound")
	}
	if scan.LimitHint != 5 {
		t.Errorf("limit hint = %d", scan.LimitHint)
	}
}

func TestRangeNotFirstSortColumnRejected(t *testing.T) {
	cat := scadrCatalog(t)
	// Inequality on timestamp but sort by text first: non-contiguous.
	compileErr(t, cat, `
		SELECT * FROM thoughts
		WHERE owner = [1: u] AND timestamp > 1000
		ORDER BY text, timestamp LIMIT 5`)
}
