package core

import (
	"fmt"
	"strings"

	"piql/internal/parser"
	"piql/internal/schema"
)

// Stats holds the table statistics a traditional cost-based optimizer
// would consult: the average number of rows sharing one value of a
// column. Keys are "table.column" (lower case).
type Stats struct {
	AvgRowsPerKey map[string]float64
}

// AvgFor returns the average rows per distinct value of table.column,
// defaulting to 1.
func (s Stats) AvgFor(table, column string) float64 {
	if s.AvgRowsPerKey == nil {
		return 1
	}
	if v, ok := s.AvgRowsPerKey[strings.ToLower(table+"."+column)]; ok {
		return v
	}
	return 1
}

// CompileCostBased is the Section 8.3 baseline: a traditional optimizer
// that minimizes the *average* number of key/value operations using
// table statistics, with no regard for worst-case bounds. For queries
// like the subscriber-intersection query it will happily pick an
// unbounded index scan (cheap for the average user, catastrophic for
// Lady GaGa); the PIQL compiler never does.
//
// Only single-relation queries are supported — enough for the paper's
// comparison; joins fall back to the PIQL plan.
func CompileCostBased(cat *schema.Catalog, stmt *parser.Select, stats Stats) (*Plan, error) {
	piqlPlan, piqlErr := Compile(cat, stmt)

	q, _, err := bind(cat, stmt)
	if err != nil {
		return nil, err
	}
	if len(q.rels) != 1 {
		if piqlErr != nil {
			return nil, piqlErr
		}
		return piqlPlan, nil
	}
	r := q.rels[0]
	order, err := phase1(q, nil)
	if err != nil {
		return nil, err
	}

	// Candidate: for each simple equality predicate, an unbounded scan
	// over an index on that column, filtering the rest locally. The
	// average cost is ~1 range request plus the average matching rows
	// for dereferencing.
	type candidate struct {
		plan Physical
		cost float64
	}
	var cands []candidate
	if piqlErr == nil {
		cands = append(cands, candidate{plan: piqlPlan.Root, cost: avgCostOf(piqlPlan.Root, stats)})
	}
	ctx := &phase2Ctx{cat: cat, q: q, order: order}
	for _, p := range r.eqPreds {
		if p.Op != parser.OpEq || p.InList != nil {
			continue
		}
		col := r.colName(p.Col)
		// A covering index (the equality column followed by every other
		// column) turns the scan into a single range RPC on average —
		// the plan the paper's cost-based optimizer picks.
		fields := []schema.IndexField{{Column: col}}
		for _, c := range r.table.Columns {
			if !strings.EqualFold(c.Name, col) {
				fields = append(fields, schema.IndexField{Column: c.Name})
			}
		}
		ix, reversed := ctx.ensureIndex(r.table, fields, 1)
		var residual []LocalPred
		for _, o := range append(append([]LocalPred{}, r.eqPreds...), r.otherPreds...) {
			if o.Col == p.Col && o.Op == parser.OpEq && o.InList == nil {
				continue
			}
			residual = append(residual, o)
		}
		scan := &IndexScan{
			Table:       r.table,
			TableOffset: r.offset,
			Index:       ix,
			Eq:          []KeyExpr{p.RHS},
			Ascending:   !reversed,
			Residual:    residual,
			Unbounded:   true,
			NeedDeref:   false, // covering: entries embed the whole row
		}
		_ = stats.AvgFor(r.table.Name, col) // retained for future per-byte costing
		cost := 1.0                         // one range RPC on average
		var plan Physical = scan
		if len(q.sort) > 0 {
			plan = &LocalSort{ChildPlan: plan, Keys: q.sort}
		}
		if q.stopK > 0 {
			plan = &LocalStop{ChildPlan: plan, K: q.stopK}
		}
		plan = &LocalProject{ChildPlan: plan, Cols: q.projCols, Names: q.projNames}
		cands = append(cands, candidate{plan: plan, cost: cost})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: cost-based optimizer found no plan")
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.cost < best.cost {
			best = c
		}
	}
	width := len(r.table.Columns)
	return &Plan{
		Root:            best.plan,
		Stmt:            stmt,
		NumParams:       q.numParams,
		OutputNames:     q.projNames,
		RequiredIndexes: ctx.required,
		RowWidth:        width,
		order:           order,
		q:               q,
	}, nil
}

// avgCostOf estimates the expected operations of a bounded plan using
// average (not worst-case) cardinalities: bounded random lookups cost
// one get per key.
func avgCostOf(n Physical, stats Stats) float64 {
	switch n := n.(type) {
	case nil:
		return 0
	case *PKLookup:
		return float64(len(n.Keys))
	case *IndexScan:
		c := 1.0
		if n.NeedDeref {
			c += float64(n.Bounds().Tuples)
		}
		return c
	case *IndexFKJoin:
		return avgCostOf(n.ChildPlan, stats) + float64(n.ChildPlan.Bounds().Tuples)
	case *SortedIndexJoin:
		return avgCostOf(n.ChildPlan, stats) + float64(n.ChildPlan.Bounds().Tuples)
	default:
		if n.Child() != nil {
			return avgCostOf(n.Child(), stats)
		}
		return 0
	}
}
