package core

import (
	"fmt"
	"strings"

	"piql/internal/schema"
	"piql/internal/value"
)

// Physical is a node of a compiled physical plan. Remote nodes (PKLookup,
// IndexScan, IndexFKJoin, SortedIndexJoin) issue key/value store
// operations; local nodes run entirely in the application tier.
type Physical interface {
	// Bounds returns the static guarantees for this subtree.
	Bounds() Bounds
	// Child returns the input subtree (nil for leaves).
	Child() Physical
	// Label renders just this node for EXPLAIN output.
	Label() string
}

// Bounds is the static analysis result for a plan subtree: the maximum
// number of tuples it can emit and the maximum number of key/value store
// operations it can issue, both independent of database size. Unbounded
// (-1) never appears in a successfully compiled plan.
type Bounds struct {
	Tuples int
	Ops    int
}

// RangeBound is an inequality limit on the scan component following the
// equality prefix.
type RangeBound struct {
	Expr      KeyExpr
	Inclusive bool
}

// KeySpec is a full key binding: one expression per key column.
type KeySpec []KeyExpr

// PKLookup fetches at most one record per key via batched random gets:
// the access path when equality predicates (or an IN list) cover the
// whole primary key. This is the bounded-random-lookup plan of Fig. 7.
type PKLookup struct {
	Table       *schema.Table
	TableOffset int
	Keys        []KeySpec // cartesian expansion of IN lists
	Residual    []LocalPred
}

func (n *PKLookup) Child() Physical { return nil }

func (n *PKLookup) Bounds() Bounds {
	return Bounds{Tuples: len(n.Keys), Ops: len(n.Keys)}
}

func (n *PKLookup) Label() string {
	return fmt.Sprintf("PKLookup(%s, keys=%d%s)", n.Table.Name, len(n.Keys), residualStr(n.Residual))
}

// IndexScan reads one contiguous index section: equality prefix, optional
// range bounds on the next component, optional limit hint. If the index
// is secondary, matching records are dereferenced through the primary
// key (one extra batched round of gets).
type IndexScan struct {
	Table        *schema.Table
	TableOffset  int
	Index        *schema.Index
	Eq           []KeyExpr   // values for the index prefix (token value first if the index is tokenized)
	Lower        *RangeBound // on the component after the prefix
	Upper        *RangeBound
	Ascending    bool
	LimitHint    int // fetch at most this many entries (0 = use DataStopCard)
	DataStopCard int // schema-derived bound on matching entries (0 = none)
	Residual     []LocalPred
	NeedDeref    bool // secondary index: fetch records via primary key
	// Unbounded marks a scan with no static bound — only the cost-based
	// baseline optimizer (Section 8.3) ever emits one; the PIQL compiler
	// rejects such plans.
	Unbounded bool
}

func (n *IndexScan) Child() Physical { return nil }

// fetchBound is how many index entries the scan may pull.
func (n *IndexScan) fetchBound() int {
	if n.Unbounded {
		return Unbounded
	}
	switch {
	case n.LimitHint > 0 && n.DataStopCard > 0:
		return boundMin(n.LimitHint, n.DataStopCard)
	case n.LimitHint > 0:
		return n.LimitHint
	default:
		return n.DataStopCard
	}
}

func (n *IndexScan) Bounds() Bounds {
	t := n.fetchBound()
	if t == Unbounded {
		return Bounds{Tuples: Unbounded, Ops: Unbounded}
	}
	ops := 1 // one range request
	if n.NeedDeref {
		ops = boundAdd(ops, t) // one get per matching entry, batched
	}
	return Bounds{Tuples: t, Ops: ops}
}

func (n *IndexScan) Label() string {
	var parts []string
	parts = append(parts, n.Index.String())
	if len(n.Eq) > 0 {
		keys := make([]string, len(n.Eq))
		for i, e := range n.Eq {
			keys[i] = e.String()
		}
		parts = append(parts, "key=("+strings.Join(keys, ", ")+")")
	}
	if n.Lower != nil {
		op := ">"
		if n.Lower.Inclusive {
			op = ">="
		}
		parts = append(parts, fmt.Sprintf("range%s%s", op, n.Lower.Expr))
	}
	if n.Upper != nil {
		op := "<"
		if n.Upper.Inclusive {
			op = "<="
		}
		parts = append(parts, fmt.Sprintf("range%s%s", op, n.Upper.Expr))
	}
	if n.Ascending {
		parts = append(parts, "ascending=true")
	} else {
		parts = append(parts, "ascending=false")
	}
	switch {
	case n.Unbounded:
		parts = append(parts, "UNBOUNDED")
	case n.LimitHint > 0:
		parts = append(parts, fmt.Sprintf("limitHint=%d", n.LimitHint))
	default:
		parts = append(parts, fmt.Sprintf("limitHint=card(%d)", n.DataStopCard))
	}
	return fmt.Sprintf("IndexScan(%s%s)", strings.Join(parts, ", "), residualStr(n.Residual))
}

// IndexFKJoin joins each child tuple to at most one record of Table via
// equality on the full primary key (the foreign-key direction bound).
type IndexFKJoin struct {
	ChildPlan   Physical
	Table       *schema.Table
	TableOffset int
	Keys        KeySpec // child columns / constants forming the target primary key
	Residual    []LocalPred
}

func (n *IndexFKJoin) Child() Physical { return n.ChildPlan }

func (n *IndexFKJoin) Bounds() Bounds {
	c := n.ChildPlan.Bounds()
	return Bounds{Tuples: c.Tuples, Ops: boundAdd(c.Ops, c.Tuples)}
}

func (n *IndexFKJoin) Label() string {
	keys := make([]string, len(n.Keys))
	for i, e := range n.Keys {
		keys[i] = e.String()
	}
	return fmt.Sprintf("IndexFKJoin(%s, key=(%s)%s)", n.Table.Name, strings.Join(keys, ", "), residualStr(n.Residual))
}

// SortedIndexJoin joins each child tuple to at most PerKeyLimit records
// of Table through a composite index whose entries are pre-sorted per
// join key, then merges the per-key streams. With a sort+stop above, the
// limit hint caps the per-key fetch (the thoughtstream optimization);
// otherwise PerKeyLimit comes from a cardinality constraint.
type SortedIndexJoin struct {
	ChildPlan   Physical
	Table       *schema.Table
	TableOffset int
	Index       *schema.Index
	JoinKey     KeySpec // child columns / constants forming the index prefix
	PerKeyLimit int
	Ascending   bool
	// MergeSort is the output ordering (combined-row indexes) produced
	// by merging the per-key sorted streams; empty when the join output
	// needs no ordering.
	MergeSort []SortKey
	Residual  []LocalPred
	NeedDeref bool
}

func (n *SortedIndexJoin) Child() Physical { return n.ChildPlan }

func (n *SortedIndexJoin) Bounds() Bounds {
	c := n.ChildPlan.Bounds()
	t := boundMul(c.Tuples, n.PerKeyLimit)
	ops := boundAdd(c.Ops, c.Tuples) // one range request per child tuple
	if n.NeedDeref {
		ops = boundAdd(ops, t)
	}
	return Bounds{Tuples: t, Ops: ops}
}

func (n *SortedIndexJoin) Label() string {
	var sortProj []string
	for _, k := range n.MergeSort {
		sortProj = append(sortProj, k.String())
	}
	keys := make([]string, len(n.JoinKey))
	for i, e := range n.JoinKey {
		keys[i] = e.String()
	}
	return fmt.Sprintf("SortedIndexJoin(%s, key=(%s), sortProjection=(%s), ascending=%v, limitHint=%d%s)",
		n.Index.String(), strings.Join(keys, ", "), strings.Join(sortProj, ", "),
		n.Ascending, n.PerKeyLimit, residualStr(n.Residual))
}

// LocalSelection filters tuples in the application tier.
type LocalSelection struct {
	ChildPlan Physical
	Preds     []LocalPred
}

func (n *LocalSelection) Child() Physical { return n.ChildPlan }
func (n *LocalSelection) Bounds() Bounds  { return n.ChildPlan.Bounds() }
func (n *LocalSelection) Label() string {
	return fmt.Sprintf("LocalSelection(%s)", predsStr(n.Preds))
}

// LocalSort sorts the (bounded) input in the application tier.
type LocalSort struct {
	ChildPlan Physical
	Keys      []SortKey
}

func (n *LocalSort) Child() Physical { return n.ChildPlan }
func (n *LocalSort) Bounds() Bounds  { return n.ChildPlan.Bounds() }
func (n *LocalSort) Label() string {
	var keys []string
	for _, k := range n.Keys {
		keys = append(keys, k.String())
	}
	return fmt.Sprintf("LocalSort(%s)", strings.Join(keys, ", "))
}

// LocalStop truncates the stream after K tuples (the standard stop
// operator of Carey & Kossmann).
type LocalStop struct {
	ChildPlan Physical
	K         int
}

func (n *LocalStop) Child() Physical { return n.ChildPlan }
func (n *LocalStop) Bounds() Bounds {
	c := n.ChildPlan.Bounds()
	return Bounds{Tuples: boundMin(n.K, c.Tuples), Ops: c.Ops}
}
func (n *LocalStop) Label() string { return fmt.Sprintf("Stop(%d)", n.K) }

// LocalProject narrows the combined row to the projected columns.
type LocalProject struct {
	ChildPlan Physical
	Cols      []int
	Names     []string
}

func (n *LocalProject) Child() Physical { return n.ChildPlan }
func (n *LocalProject) Bounds() Bounds  { return n.ChildPlan.Bounds() }
func (n *LocalProject) Label() string {
	return fmt.Sprintf("Project(%s)", strings.Join(n.Names, ", "))
}

// LocalAgg computes grouped aggregates over the bounded input.
type LocalAgg struct {
	ChildPlan Physical
	GroupBy   []int
	Aggs      []AggSpec
	Names     []string
}

func (n *LocalAgg) Child() Physical { return n.ChildPlan }
func (n *LocalAgg) Bounds() Bounds {
	c := n.ChildPlan.Bounds()
	return Bounds{Tuples: c.Tuples, Ops: c.Ops} // at most one group per input tuple
}
func (n *LocalAgg) Label() string {
	return fmt.Sprintf("LocalAgg(groups=%d, aggs=%s)", len(n.GroupBy), strings.Join(n.Names, ", "))
}

func residualStr(preds []LocalPred) string {
	if len(preds) == 0 {
		return ""
	}
	return ", residual: " + predsStr(preds)
}

func predsStr(preds []LocalPred) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

// Eval resolves a KeySpec against query parameters and an outer row.
func (ks KeySpec) Eval(params []value.Value, outer value.Row) (value.Row, error) {
	row := make(value.Row, len(ks))
	for i, e := range ks {
		v, err := e.Eval(params, outer)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}
