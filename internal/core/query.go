// Package core implements the paper's primary contribution: the PIQL
// scale-independent query compiler. It binds a parsed SELECT against the
// catalog, runs the two optimization phases of Section 5 — Phase I
// inserts and pushes down stop and data-stop operators (Algorithm 1),
// Phase II matches plan sections onto the three bounded remote operators
// (Algorithm 2) — selects the indexes the plan needs (Section 5.3),
// computes the static bound on key/value operations, and, when a query
// cannot be bounded, produces Performance Insight Assistant feedback
// (Section 6.4).
package core

import (
	"fmt"
	"strings"

	"piql/internal/parser"
	"piql/internal/schema"
	"piql/internal/value"
)

// Unbounded marks a tuple or operation count with no static bound.
const Unbounded = -1

// boundAdd adds two possibly-unbounded counts.
func boundAdd(a, b int) int {
	if a == Unbounded || b == Unbounded {
		return Unbounded
	}
	return a + b
}

// boundMul multiplies two possibly-unbounded counts.
func boundMul(a, b int) int {
	if a == Unbounded || b == Unbounded {
		return Unbounded
	}
	return a * b
}

// boundMin returns the tighter of two possibly-unbounded counts.
func boundMin(a, b int) int {
	if a == Unbounded {
		return b
	}
	if b == Unbounded {
		return a
	}
	if a < b {
		return a
	}
	return b
}

// --- expressions shared by the compiler and the execution engine ---

// KeyExpr is a value source for a key component or comparison: a
// literal, a query parameter, or a column of the combined outer row.
type KeyExpr struct {
	kind     keyExprKind
	constant value.Value
	param    int // 1-based
	childCol int // combined-row index
	display  string
}

type keyExprKind int

const (
	keyConst keyExprKind = iota
	keyParam
	keyChildCol
)

func constExpr(v value.Value) KeyExpr {
	return KeyExpr{kind: keyConst, constant: v, display: v.String()}
}

func paramExpr(p parser.Param) KeyExpr {
	return KeyExpr{kind: keyParam, param: p.Index, display: p.String()}
}

func childColExpr(idx int, display string) KeyExpr {
	return KeyExpr{kind: keyChildCol, childCol: idx, display: display}
}

func (e KeyExpr) String() string { return e.display }

// IsChildCol reports whether the expression reads from the outer row,
// and if so which combined-row column.
func (e KeyExpr) IsChildCol() (int, bool) {
	if e.kind == keyChildCol {
		return e.childCol, true
	}
	return 0, false
}

// Eval resolves the expression against query parameters and (for child
// column references) the combined outer row.
func (e KeyExpr) Eval(params []value.Value, outer value.Row) (value.Value, error) {
	switch e.kind {
	case keyConst:
		return e.constant, nil
	case keyParam:
		if e.param < 1 || e.param > len(params) {
			return value.Value{}, fmt.Errorf("core: parameter %d not supplied (%d given)", e.param, len(params))
		}
		return params[e.param-1], nil
	case keyChildCol:
		if e.childCol < 0 || e.childCol >= len(outer) {
			return value.Value{}, fmt.Errorf("core: internal: child column %d out of range", e.childCol)
		}
		return outer[e.childCol], nil
	default:
		return value.Value{}, fmt.Errorf("core: internal: bad key expression")
	}
}

// LocalPred is a predicate evaluated in the application tier against the
// combined row: Col <Op> RHS, or Col IN InList.
type LocalPred struct {
	Col    int // combined-row index
	Name   string
	Op     parser.CompareOp
	RHS    KeyExpr
	InList []KeyExpr // IN-list; when set, Op is OpEq and RHS is unused
}

func (p LocalPred) String() string {
	if p.InList != nil {
		parts := make([]string, len(p.InList))
		for i, e := range p.InList {
			parts[i] = e.String()
		}
		return fmt.Sprintf("%s IN (%s)", p.Name, strings.Join(parts, ", "))
	}
	return fmt.Sprintf("%s %s %s", p.Name, p.Op, p.RHS)
}

// Eval evaluates the predicate against a combined row.
func (p LocalPred) Eval(row value.Row, params []value.Value) (bool, error) {
	lhs := row[p.Col]
	if p.InList != nil {
		for _, e := range p.InList {
			rhs, err := e.Eval(params, row)
			if err != nil {
				return false, err
			}
			if value.Equal(lhs, rhs) {
				return true, nil
			}
		}
		return false, nil
	}
	if p.Op == parser.OpContains {
		rhs, err := p.RHS.Eval(params, row)
		if err != nil {
			return false, err
		}
		return containsToken(lhs.S, rhs.S), nil
	}
	rhs, err := p.RHS.Eval(params, row)
	if err != nil {
		return false, err
	}
	c := value.Compare(lhs, rhs)
	switch p.Op {
	case parser.OpEq:
		return c == 0, nil
	case parser.OpNe:
		return c != 0, nil
	case parser.OpLt:
		return c < 0, nil
	case parser.OpLe:
		return c <= 0, nil
	case parser.OpGt:
		return c > 0, nil
	case parser.OpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("core: cannot evaluate %s locally", p.Op)
	}
}

// containsToken reports whether text contains word as a full token under
// the same tokenizer the full-text index uses.
func containsToken(text, word string) bool {
	want := strings.ToLower(word)
	for _, tok := range Tokenize(text) {
		if tok == want {
			return true
		}
	}
	return false
}

// Tokenize splits text into lower-cased alphanumeric tokens. It is the
// single tokenizer shared by the compiler, the inverted full-text index,
// and local CONTAINS evaluation.
func Tokenize(text string) []string {
	var toks []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			toks = append(toks, strings.ToLower(text[start:end]))
			start = -1
		}
	}
	for i, r := range text {
		isWord := r == '_' || ('0' <= r && r <= '9') || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z')
		if isWord && start < 0 {
			start = i
		} else if !isWord {
			flush(i)
		}
	}
	flush(len(text))
	return toks
}

// SortKey is a resolved ORDER BY component over the combined row.
type SortKey struct {
	Col  int
	Name string
	Desc bool
}

func (k SortKey) String() string {
	if k.Desc {
		return k.Name + " DESC"
	}
	return k.Name + " ASC"
}

// AggSpec is one aggregate output column.
type AggSpec struct {
	Kind parser.AggKind
	Col  int // combined-row index; -1 for COUNT(*)
	Name string
}

// --- bound query: the binder's output, consumed by Phase I ---

// rel is one relation in the query with its single-table predicates.
type rel struct {
	ref    parser.TableRef
	table  *schema.Table
	offset int // column offset of this relation in the combined row

	eqPreds    []LocalPred // equality against literal/param (incl. IN, CONTAINS)
	otherPreds []LocalPred // inequalities and anything else single-table

	// Phase I results: the data-stop normal form for this relation's
	// access chain (abovePreds → DataStop(card) → belowPreds → Relation).
	dataStopCard int         // 0 = none, else max matching tuples per access
	belowPreds   []LocalPred // predicates that caused the data-stop
	abovePreds   []LocalPred // predicates the data-stop pushed past
	joinPreds    []joinPred  // equi-join predicates linking to earlier rels
}

// colName returns the relation-local column name for ordinal ci.
func (r *rel) colName(ci int) string { return r.table.Columns[ci].Name }

// joinPred is an equi-join predicate: this relation's column equals a
// column of an earlier relation (identified by combined-row index).
type joinPred struct {
	col      int // column ordinal within this relation
	name     string
	outerCol int // combined-row index of the matching outer column
	outerStr string
}

func (p joinPred) String() string {
	return fmt.Sprintf("%s = %s", p.name, p.outerStr)
}

// boundQuery is the binder output: relations in FROM order (offsets fixed
// by FROM position), resolved sort/projection, and the query-level stop.
type boundQuery struct {
	stmt *parser.Select
	rels []*rel

	sort  []SortKey
	stopK int  // LIMIT or PAGINATE page size; 0 = none
	page  bool // stop came from PAGINATE

	// Projection: either plain columns or aggregates.
	projCols  []int // combined-row indexes
	projNames []string
	groupBy   []int
	aggs      []AggSpec

	numParams int
}
