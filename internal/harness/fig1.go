package harness

import (
	"fmt"
	"io"

	"piql/internal/engine"
	"piql/internal/kvstore"
	"piql/internal/value"
)

// Fig1Row reports, for one database size, the amount of data relevant
// to a representative query of each scaling class (Section 2):
// Class I constant, Class II bounded, Class III linear, Class IV
// super-linear. Classes I and II are measured by executing real PIQL
// queries and counting storage operations; III and IV are the paper's
// disallowed shapes, measured against the raw store (PIQL rejects
// them).
type Fig1Row struct {
	Users    int
	ClassI   int64 // profile lookup by primary key
	ClassII  int64 // subscriptions of one user (cardinality-bounded)
	ClassIII int64 // count of all logged-in users (linear scan)
	ClassIV  int64 // pairwise similarity (self cartesian product)
}

// RunFig1 sweeps database sizes and measures each class.
func RunFig1(sizes []int, seed int64) ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, users := range sizes {
		cluster := kvstore.New(kvstore.Config{Nodes: 4, ReplicationFactor: 1, Seed: seed}, nil)
		eng := engine.New(cluster)
		s := eng.Session(nil)
		for _, ddl := range []string{
			`CREATE TABLE users (username VARCHAR(20), hometown VARCHAR(20), PRIMARY KEY (username))`,
			`CREATE TABLE subscriptions (owner VARCHAR(20), target VARCHAR(20),
				PRIMARY KEY (owner, target), CARDINALITY LIMIT 100 (owner))`,
		} {
			if err := s.Exec(ddl); err != nil {
				return nil, err
			}
		}
		for u := 0; u < users; u++ {
			name := fmt.Sprintf("u%06d", u)
			if err := s.Exec(`INSERT INTO users VALUES (?, 'SF')`, value.Str(name)); err != nil {
				return nil, err
			}
			for k := 1; k <= 10; k++ {
				if err := s.Exec(`INSERT INTO subscriptions VALUES (?, ?)`,
					value.Str(name), value.Str(fmt.Sprintf("u%06d", (u+k)%users))); err != nil {
					return nil, err
				}
			}
		}
		row := Fig1Row{Users: users}

		// Class I: point lookup.
		s.Client().ResetOps()
		if _, err := s.Query(`SELECT * FROM users WHERE username = 'u000001'`); err != nil {
			return nil, err
		}
		row.ClassI = s.Client().Ops()

		// Class II: bounded relationship (10 actual, 100 max).
		s.Client().ResetOps()
		res, err := s.Query(`SELECT target FROM subscriptions WHERE owner = 'u000001'`)
		if err != nil {
			return nil, err
		}
		row.ClassII = int64(len(res.Rows))

		// Class III: touching every user (PIQL rejects this query; the
		// relevant data is the full table).
		row.ClassIII = int64(users)

		// Class IV: self cartesian product for clustering.
		row.ClassIV = int64(users) * int64(users)

		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig1 renders the class comparison.
func PrintFig1(out io.Writer, rows []Fig1Row) {
	fmt.Fprintln(out, "Fig 1: amount of relevant data vs database size, by query scaling class")
	fmt.Fprintf(out, "%10s %12s %12s %14s %16s\n", "users", "Class I", "Class II", "Class III", "Class IV")
	for _, r := range rows {
		fmt.Fprintf(out, "%10d %12d %12d %14d %16d\n", r.Users, r.ClassI, r.ClassII, r.ClassIII, r.ClassIV)
	}
	fmt.Fprintln(out, "Classes I and II stay flat as the database grows — the only classes a")
	fmt.Fprintln(out, "success-tolerant application can use; PIQL statically rejects III and IV.")
	fmt.Fprintln(out)
}
