package harness

import (
	"bytes"
	"testing"
	"time"

	"piql/internal/exec"
	"piql/internal/workload/scadr"
)

func quickScaleConfig() ScaleConfig {
	return ScaleConfig{
		NodeCounts:       []int{4, 8},
		ThreadsPerClient: 3,
		Warmup:           300 * time.Millisecond,
		Measure:          700 * time.Millisecond,
		Seed:             1,
		Strategy:         exec.Parallel,
	}
}

func smallSCADr() scadr.Config {
	cfg := scadr.DefaultConfig()
	cfg.UsersPerNode = 100
	cfg.ThoughtsPerUser = 5
	return cfg
}

// TestScaleRunShowsLinearityAndFlatLatency is the Figs. 8-11 shape check
// in miniature: doubling nodes roughly doubles throughput while the
// 99th percentile stays flat.
func TestScaleRunShowsLinearityAndFlatLatency(t *testing.T) {
	res, err := RunScale(SCADrWorkload(smallSCADr()), quickScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	p4, p8 := res.Points[0], res.Points[1]
	ratio := p8.Throughput / p4.Throughput
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("throughput scaling 4->8 nodes = %.2fx, want ~2x", ratio)
	}
	if p8.P99 > p4.P99*2 {
		t.Errorf("p99 not flat: %v -> %v", p4.P99, p8.P99)
	}
	if res.Fit.R2 < 0.9 {
		t.Errorf("R² = %v", res.Fit.R2)
	}
	var buf bytes.Buffer
	res.Print(&buf, "FigA", "FigB")
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

// TestFig7Crossover is the Section 8.3 shape check: the unbounded plan
// degrades with popularity, the bounded plan does not.
func TestFig7Crossover(t *testing.T) {
	cfg := Fig7Config{
		Subscribers: []int{0, 2000},
		Friends:     20,
		Executions:  80,
		Nodes:       6,
		Seed:        5,
	}
	points, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unpopular, popular := points[0], points[1]
	// The bounded plan's latency is popularity-independent.
	if popular.BoundedP99 > unpopular.BoundedP99*3 {
		t.Errorf("bounded plan degraded with popularity: %v -> %v",
			unpopular.BoundedP99, popular.BoundedP99)
	}
	// The unbounded plan degrades sharply for the popular user.
	if popular.UnboundedP99 < 3*popular.BoundedP99 {
		t.Errorf("unbounded plan did not blow up: unbounded=%v bounded=%v",
			popular.UnboundedP99, popular.BoundedP99)
	}
	var buf bytes.Buffer
	PrintFig7(&buf, points)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

// TestFig1Classes checks the class growth shapes.
func TestFig1Classes(t *testing.T) {
	rows, err := RunFig1([]int{50, 500}, 3)
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[1]
	if small.ClassI != large.ClassI {
		t.Error("Class I grew with database size")
	}
	if small.ClassII != large.ClassII {
		t.Error("Class II grew with database size")
	}
	if large.ClassIII != 10*small.ClassIII {
		t.Errorf("Class III not linear: %d -> %d", small.ClassIII, large.ClassIII)
	}
	if large.ClassIV != 100*small.ClassIV {
		t.Errorf("Class IV not quadratic: %d -> %d", small.ClassIV, large.ClassIV)
	}
	var buf bytes.Buffer
	PrintFig1(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}
