package harness

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"piql/internal/engine"
	"piql/internal/exec"
	"piql/internal/kvstore"
	"piql/internal/sim"
	"piql/internal/stats"
	"piql/internal/value"
	"piql/internal/workload/tpcw"
)

// Fig12Result compares the three execution strategies (Section 8.5) on
// TPC-W with 10 storage nodes and 5 client machines: the full ordering
// mix, plus the New Products interaction alone — the fan-out query
// whose 50 dereferences and 50 foreign-key gets show exactly what limit
// hints (Lazy vs Simple) and intra-query parallelism (Simple vs
// Parallel) buy.
type Fig12Result struct {
	P99       map[exec.Strategy]time.Duration
	Mean      map[exec.Strategy]time.Duration
	FanOutP99 map[exec.Strategy]time.Duration
	// FanOutOps is the mean number of storage requests one New Products
	// execution issues — the executor round-trip budget made measurable.
	// Lazy pays per tuple; Simple and Parallel pay a constant number of
	// batched request sets per operator.
	FanOutOps map[exec.Strategy]float64
}

// RunFig12 measures interaction latency under each executor.
func RunFig12(seed int64) (*Fig12Result, error) {
	res := &Fig12Result{
		P99:       make(map[exec.Strategy]time.Duration),
		Mean:      make(map[exec.Strategy]time.Duration),
		FanOutP99: make(map[exec.Strategy]time.Duration),
		FanOutOps: make(map[exec.Strategy]float64),
	}
	wcfg := tpcw.DefaultConfig()
	wcfg.CustomersPerNode = 300
	for _, strat := range []exec.Strategy{exec.Lazy, exec.Simple, exec.Parallel} {
		cfg := ScaleConfig{
			NodeCounts:       []int{10},
			ThreadsPerClient: 10,
			Warmup:           time.Second,
			Measure:          3 * time.Second,
			Seed:             seed,
			Strategy:         strat,
			// Equal offered load for every strategy: without think time
			// the faster executors saturate the cluster and the
			// comparison measures queueing, not execution strategy.
			ThinkTime: 100 * time.Millisecond,
		}
		pt, err := RunScalePoint(TPCWWorkload(wcfg), cfg, 10)
		if err != nil {
			return nil, fmt.Errorf("fig12 %v: %w", strat, err)
		}
		res.P99[strat] = pt.P99
		res.Mean[strat] = pt.Mean
	}
	fan, fanOps, err := measureFanOutQuery(wcfg, seed)
	if err != nil {
		return nil, err
	}
	res.FanOutP99 = fan
	res.FanOutOps = fanOps
	return res, nil
}

// measureFanOutQuery runs the New Products WI alone under each strategy
// on a lightly loaded cluster, reporting p99 latency and mean storage
// requests per execution.
func measureFanOutQuery(wcfg tpcw.Config, seed int64) (map[exec.Strategy]time.Duration, map[exec.Strategy]float64, error) {
	env := sim.NewEnv()
	cluster := kvstore.New(kvstore.Config{Nodes: 10, ReplicationFactor: 2, Seed: seed}, env)
	eng := engine.New(cluster)
	loader := eng.Session(nil)
	for _, ddl := range tpcw.DDL(wcfg) {
		if err := loader.Exec(ddl); err != nil {
			return nil, nil, err
		}
	}
	if _, _, err := tpcw.Load(loader, wcfg, 10); err != nil {
		return nil, nil, err
	}
	q, err := loader.Prepare(tpcw.QuerySQL()["New Products WI"])
	if err != nil {
		return nil, nil, err
	}
	cluster.Rebalance()

	const executions = 400
	out := make(map[exec.Strategy]time.Duration)
	outOps := make(map[exec.Strategy]float64)
	for _, strat := range []exec.Strategy{exec.Lazy, exec.Simple, exec.Parallel} {
		var lat []time.Duration
		var ops int64
		var runErr error
		strat := strat
		env.Spawn(func(p *sim.Proc) {
			s := eng.Session(p)
			s.SetStrategy(strat)
			s.Client().ResetOps()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < executions; i++ {
				subject := tpcw.Subjects[rng.Intn(len(tpcw.Subjects))]
				t0 := p.Now()
				if _, err := q.Execute(s, value.Str(subject)); err != nil {
					runErr = err
					return
				}
				lat = append(lat, p.Now()-t0)
				p.Sleep(25 * time.Millisecond)
			}
			ops = s.Client().Ops()
		})
		env.Run(0)
		if runErr != nil {
			return nil, nil, runErr
		}
		out[strat] = stats.Percentile(lat, 99)
		outOps[strat] = float64(ops) / executions
	}
	env.Stop()
	return out, outOps, nil
}

// Print renders the comparison (paper: Lazy 639 > Simple 451 >
// Parallel 331 ms).
func (r *Fig12Result) Print(out io.Writer) {
	fmt.Fprintln(out, "Fig 12: TPC-W 99th-percentile response time by execution strategy")
	for _, strat := range []exec.Strategy{exec.Lazy, exec.Simple, exec.Parallel} {
		fmt.Fprintf(out, "%18s: mix p99 = %7.1f ms   mix mean = %6.1f ms   New Products WI p99 = %7.1f ms (%.1f reqs/exec)\n",
			strat, msF(r.P99[strat]), msF(r.Mean[strat]), msF(r.FanOutP99[strat]), r.FanOutOps[strat])
	}
	fmt.Fprintln(out)
}
