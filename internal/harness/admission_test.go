package harness

import (
	"bytes"
	"errors"
	"testing"

	"piql/internal/analyze"
	"piql/internal/engine"
	"piql/internal/kvstore"
	"piql/internal/workload/scadr"
	"piql/internal/workload/tpcw"
)

// TestAdmissionProtectsGoodTenant is the acceptance scenario: with
// enforcement off the unbounded covering scan inflates the bounded
// tenant's p99; with enforcement on every Prepare of the scan is
// refused with *analyze.ErrUnbounded and the bounded tenant's p99
// returns to (near) its solo baseline. The simulation is deterministic
// for a fixed config.
func TestAdmissionProtectsGoodTenant(t *testing.T) {
	cfg := AdmissionConfig{
		Nodes:          4,
		Subscribers:    2000,
		Friends:        30,
		GoodExecutions: 120,
		BadWorkers:     30,
		BadExecutions:  25,
		Seed:           23,
	}
	res, err := RunAdmission(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BadScans == 0 {
		t.Fatal("contended phase ran no unbounded scans; scenario is vacuous")
	}
	if want := cfg.BadWorkers * cfg.BadExecutions; res.Refusals != want {
		t.Errorf("enforced phase refused %d/%d Prepares", res.Refusals, want)
	}
	var unb *analyze.ErrUnbounded
	if !errors.As(res.RefusalErr, &unb) {
		t.Fatalf("refusal error = %v (%T), want *analyze.ErrUnbounded", res.RefusalErr, res.RefusalErr)
	}
	if unb.Operator == "" || len(unb.Chain) == 0 {
		t.Errorf("refusal carries no operator chain: %+v", unb)
	}
	// The scan must visibly hurt the good tenant, and enforcement must
	// undo the damage.
	if res.ContendedP99 < res.BaselineP99*3/2 {
		t.Errorf("unbounded scan did not degrade good tenant: baseline %v, contended %v",
			res.BaselineP99, res.ContendedP99)
	}
	if res.EnforcedP99 > res.BaselineP99*3/2 {
		t.Errorf("enforcement did not protect good tenant: baseline %v, enforced %v",
			res.BaselineP99, res.EnforcedP99)
	}
	if res.EnforcedP99 >= res.ContendedP99 {
		t.Errorf("enforced p99 %v not better than contended %v", res.EnforcedP99, res.ContendedP99)
	}
	var buf bytes.Buffer
	PrintAdmission(&buf, cfg, res)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

// TestWorkloadQueriesAllBounded classifies every prepared query of the
// SCADr and TPC-W workloads plus the Figure 7 pair: all application
// queries must analyze as bounded (with the analyzer and the compiler
// agreeing on the operation bound), and only the cost-based baseline's
// covering scan may analyze as unbounded.
func TestWorkloadQueriesAllBounded(t *testing.T) {
	check := func(t *testing.T, name string, qs map[string]*engine.Prepared) {
		t.Helper()
		for qname, q := range qs {
			b := q.Bound()
			if b == nil {
				t.Fatalf("%s/%s: no bound attached", name, qname)
			}
			if !b.Bounded {
				t.Errorf("%s/%s: classified unbounded: %s", name, qname, b.Reason)
				continue
			}
			if b.Ops != q.Plan().OpBound() {
				t.Errorf("%s/%s: analyzer bound %d != compiler bound %d",
					name, qname, b.Ops, q.Plan().OpBound())
			}
		}
	}

	t.Run("scadr", func(t *testing.T) {
		cluster := kvstore.New(kvstore.Config{Nodes: 2, ReplicationFactor: 2, Seed: 3}, nil)
		s := engine.New(cluster).Session(nil)
		cfg := scadr.DefaultConfig()
		cfg.UsersPerNode = 20
		cfg.ThoughtsPerUser = 2
		for _, ddl := range scadr.DDL(cfg) {
			if err := s.Exec(ddl); err != nil {
				t.Fatal(err)
			}
		}
		users, err := scadr.Load(s, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		w, err := scadr.NewWorker(s, cfg, users, 1)
		if err != nil {
			t.Fatal(err)
		}
		check(t, "scadr", w.Queries())
	})

	t.Run("tpcw", func(t *testing.T) {
		cluster := kvstore.New(kvstore.Config{Nodes: 2, ReplicationFactor: 2, Seed: 3}, nil)
		s := engine.New(cluster).Session(nil)
		cfg := tpcw.DefaultConfig()
		cfg.CustomersPerNode = 20
		cfg.Items = 50
		for _, ddl := range tpcw.DDL(cfg) {
			if err := s.Exec(ddl); err != nil {
				t.Fatal(err)
			}
		}
		customers, items, err := tpcw.Load(s, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		w, err := tpcw.NewWorker(s, cfg, customers, items, 1)
		if err != nil {
			t.Fatal(err)
		}
		check(t, "tpcw", w.Queries())
	})

	t.Run("fig7", func(t *testing.T) {
		bounded, unbounded, err := Fig7Plans(50)
		if err != nil {
			t.Fatal(err)
		}
		if b := analyze.Plan(bounded); !b.Bounded {
			t.Errorf("fig7 PIQL plan classified unbounded: %s", b.Reason)
		} else if b.Ops != 50 {
			t.Errorf("fig7 PIQL plan bound = %d, want 50", b.Ops)
		}
		if b := analyze.Plan(unbounded); b.Bounded {
			t.Error("fig7 cost-based plan classified bounded")
		}
	})
}
