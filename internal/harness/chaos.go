package harness

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"piql/internal/codec"
	"piql/internal/engine"
	"piql/internal/index"
	"piql/internal/kvstore"
	"piql/internal/schema"
	"piql/internal/value"
)

// ChaosConfig drives the online-operations chaos workload: real
// goroutines hammer the write path of one engine while a secondary
// index is built and the cluster rebalances, repeatedly, under it all.
// It is the end-to-end proof (run under -race in CI) that the two
// formerly quiescent operations — backfill and rebalance — are safe
// under live traffic.
type ChaosConfig struct {
	// Nodes is the cluster size.
	Nodes int
	// Writers is the number of concurrent writer goroutines.
	Writers int
	// OpsPerWriter is each writer's operation count (inserts, updates,
	// deletes, and read-back checks).
	OpsPerWriter int
	// Rebalances is how many times the cluster rebalances during the run.
	Rebalances int
	// CASWriters is the number of conditional-writer goroutines racing
	// TestAndSet on CASKeys shared keys. Every accepted swap is recorded
	// and replayed against a serial model after the run: with unique
	// update values, a linearizable register admits exactly one accepted
	// swap per state, so a double-accept across a rebalance flip (the
	// pre-fencing anomaly) or a lost accepted swap fails the audit.
	CASWriters int
	// CASKeys is how many shared keys the conditional writers contend on.
	CASKeys int
	// CASOpsPerWriter is each conditional writer's attempt count.
	CASOpsPerWriter int
	// MoveChunkKeys bounds the rebalance copy's chunk windows (0 =
	// store default); the chaos run keeps it small so every rebalance
	// crosses many windows.
	MoveChunkKeys int
	// Seed drives the cluster's randomness.
	Seed int64
	// Faults, when non-nil, injects real failures into the storm: node
	// crashes, partitions, and the falsification knobs that prove the
	// recovery machinery is load-bearing.
	Faults *FaultSchedule
}

// FaultSchedule switches on fault injection during the chaos storm.
// The victim node is fixed (see RunChaos — a node owning the
// record-carrying head partitions), so the schedule is deterministic
// given the config.
type FaultSchedule struct {
	// KillRestart crashes the victim concurrently with a mid-storm
	// rebalance and restarts it two rebalances later — the catch-up
	// replay and lease re-grant path. Writes acked during the outage
	// must survive it.
	KillRestart bool
	// Partition cuts the victim away from the client side mid-storm and
	// heals it two rebalances later, with the storm paced so the
	// victim's leases expire and a rebalance reclaims its ranges while
	// it is unreachable.
	Partition bool
	// LeaseMs overrides the cluster's lease duration in milliseconds
	// (default 40). Short leases let reclaim happen inside the run;
	// a long lease (e.g. 60000) pins ownership across the outage so
	// recovery rides on catch-up replay alone.
	LeaseMs int
	// OpDeadlineMs bounds each writer operation's retry-on-transient
	// loop (default 10000). An op still failing past the deadline fails
	// the run: that is a wedge, not a transient.
	OpDeadlineMs int
	// DisableFailover is a falsification knob: reads no longer reroute
	// around an unreachable replica. A faulted run with it set must
	// fail — proving the survival tests actually depend on failover.
	DisableFailover bool
	// DisableCatchUpReplay is a falsification knob: writes queued for
	// an unreachable node are never replayed at rejoin, so a recovered
	// node serves stale state. A faulted run with it set must fail —
	// proving the tests actually depend on replay.
	DisableCatchUpReplay bool
}

func (f *FaultSchedule) lease() time.Duration {
	if f.LeaseMs > 0 {
		return time.Duration(f.LeaseMs) * time.Millisecond
	}
	return 40 * time.Millisecond
}

func (f *FaultSchedule) opDeadline() time.Duration {
	if f.OpDeadlineMs > 0 {
		return time.Duration(f.OpDeadlineMs) * time.Millisecond
	}
	return 10 * time.Second
}

// DefaultChaosConfig keeps the run under a second in immediate mode.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Nodes: 6, Writers: 8, OpsPerWriter: 300, Rebalances: 8,
		CASWriters: 6, CASKeys: 4, CASOpsPerWriter: 400, MoveChunkKeys: 32,
		Seed: 1,
	}
}

// ChaosResult summarizes a chaos run. Any integrity violation is
// reported through the error return of RunChaos instead; the counters
// here prove the run actually exercised the online paths.
type ChaosResult struct {
	Inserted     int64 // rows successfully inserted
	Deleted      int64 // rows deleted again
	Reads        int64 // point queries issued by writers mid-run
	Rebalances   int   // rebalances completed during traffic
	Records      int   // rows surviving at the end
	Entries      int   // index entries at the end (== Records when clean)
	Epoch        int64 // final routing epoch
	CASAccepted  int64 // conditional swaps accepted (all model-checked)
	FenceRejects int64 // conditional decisions retried after epoch fencing
	TombsSwept   int64 // delete tombstones collected by the post-run GC

	// Fault-injection evidence (zero without a FaultSchedule): the
	// survival tests require these to prove the faults actually fired.
	Kills            int64 // node crashes injected
	Partitions       int64 // partitions injected
	CatchUpsQueued   int64 // writes queued for unreachable nodes
	CatchUpsReplayed int64 // queued writes replayed at rejoin
	RetriedOps       int64 // writer ops that needed at least one transient retry
}

// RunChaos builds a table, starts the writer fleet, and — while the
// fleet runs — creates a secondary index (online backfill) and
// rebalances the cluster repeatedly. Every writer checks
// read-your-writes after each operation through a bounded point query.
// After the fleet drains, RunChaos audits the store: each surviving row
// must have exactly its index entries (none missing, none dangling) and
// be readable through the ready index.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 4
	}
	if cfg.OpsPerWriter <= 0 {
		cfg.OpsPerWriter = 200
	}
	if cfg.CASWriters > 0 && cfg.CASKeys <= 0 {
		cfg.CASKeys = 1 // the audit loop must cover every key the fleet touches
	}
	f := cfg.Faults
	kcfg := kvstore.Config{
		Nodes:             cfg.Nodes,
		ReplicationFactor: 2,
		Seed:              cfg.Seed,
		MoveChunkKeys:     cfg.MoveChunkKeys,
	}
	if f != nil {
		kcfg.LeaseDuration = f.lease()
	}
	cluster := kvstore.New(kcfg, nil)
	if f != nil {
		cluster.SetFailover(!f.DisableFailover)
		cluster.SetCatchUpReplay(!f.DisableCatchUpReplay)
	}
	eng := engine.New(cluster)
	loader := eng.Session(nil)
	if err := loader.Exec(`CREATE TABLE chaos_rows (
		id VARCHAR(40), grp VARCHAR(20), body VARCHAR(60),
		PRIMARY KEY (id))`); err != nil {
		return nil, err
	}
	for i := 0; i < 200; i++ {
		if err := loader.Exec(`INSERT INTO chaos_rows VALUES (?, ?, 'seed row')`,
			value.Str(fmt.Sprintf("seed-%04d", i)), value.Str(grpName(i))); err != nil {
			return nil, err
		}
	}
	cluster.Rebalance() // spread the seed data before the storm

	res := &ChaosResult{}
	var inserted, deleted, reads, retried atomic.Int64
	// Under a fault schedule, transient errors — a dead primary inside
	// its lease window, a fence retry budget exhausted against it — are
	// legal write outcomes; the writers retry them against a generous
	// deadline. An op still transient past the deadline fails the run:
	// that is a wedge (or a lost acked write), not a blip. Reads are
	// never retried — failover is supposed to make them succeed on the
	// first try, and retrying would mask its absence.
	opDeadline := 10 * time.Second
	if f != nil {
		opDeadline = f.opDeadline()
	}
	retry := func(op func() error) error {
		var once bool
		deadline := time.Now().Add(opDeadline)
		for {
			err := op()
			if err == nil || !engine.Retryable(err) || time.Now().After(deadline) {
				return err
			}
			if !once {
				once = true
				retried.Add(1)
			}
			time.Sleep(time.Millisecond) //lint:allow simsleep — wall-clock fault-window pacing; the cluster is immediate-mode
		}
	}
	errs := make(chan error, cfg.Writers)
	var wg sync.WaitGroup
	var writersAlive atomic.Int64
	// stormDone releases the writer fleet: each writer runs at least its
	// OpsPerWriter and then keeps going until the storm (index build,
	// rebalances, fault schedule) has finished, so faults always land on
	// live traffic no matter how long the backfill took.
	var stormDone atomic.Bool
	writersAlive.Store(int64(cfg.Writers))
	for g := 0; g < cfg.Writers; g++ {
		wg.Add(1)
		//lint:allow goroleak — writer fleet is wg-joined below; the loop is bounded by stormDone, which the storm goroutine sets via defer. The opaque call is the retry closure, whose attempts are capped.
		go func(g int) {
			defer wg.Done()
			defer writersAlive.Add(-1)
			s := eng.Session(nil)
			fail := func(format string, args ...any) {
				select {
				case errs <- fmt.Errorf("writer %d: "+format, append([]any{g}, args...)...):
				default:
				}
			}
			alive := make(map[int]bool) // writer-local row ids believed live
			for i := 0; i < cfg.OpsPerWriter || !stormDone.Load(); i++ {
				id := fmt.Sprintf("w%02d-%05d", g, i%119)
				switch i % 5 {
				case 0, 1, 2: // insert a fresh row (or collide with a live one)
					err := retry(func() error {
						return s.Exec(`INSERT INTO chaos_rows VALUES (?, ?, ?)`,
							value.Str(id), value.Str(grpName(g)), value.Str(fmt.Sprintf("body-%d", i)))
					})
					if err == nil {
						if alive[i%119] {
							fail("insert of live row %s succeeded", id)
							return
						}
						alive[i%119] = true
						inserted.Add(1)
					} else if alive[i%119] {
						// duplicate collision with our own live row: expected
					} else {
						fail("insert %s: %v", id, err)
						return
					}
				case 3: // update a live row
					if alive[i%119] {
						if err := retry(func() error {
							return s.Exec(`UPDATE chaos_rows SET body = ? WHERE id = ?`,
								value.Str(fmt.Sprintf("upd-%d", i)), value.Str(id))
						}); err != nil {
							fail("update %s: %v", id, err)
							return
						}
					}
				case 4: // delete a live row
					if alive[i%119] {
						if err := retry(func() error {
							return s.Exec(`DELETE FROM chaos_rows WHERE id = ?`, value.Str(id))
						}); err != nil {
							fail("delete %s: %v", id, err)
							return
						}
						delete(alive, i%119)
						deleted.Add(1)
					}
				}
				// Read-your-writes through the query path: a point query on
				// the primary key must see exactly what this writer believes.
				q, err := s.Query(`SELECT id FROM chaos_rows WHERE id = ? LIMIT 1`, value.Str(id))
				if err != nil {
					fail("point query %s: %v", id, err)
					return
				}
				reads.Add(1)
				if got, want := len(q.Rows), alive[i%119]; (got == 1) != want {
					fail("point query %s returned %d rows, want live=%v (op %d)", id, got, want, i)
					return
				}
				// Coverage read: one immutable seed row per iteration. The
				// writers' own keys cluster at the tail of the keyspace, so
				// read-your-writes alone can miss a dead node entirely; the
				// seed rows span every partition, making a read land on any
				// victim-owned range within a few iterations — the traffic
				// that proves failover (and fails the run without it).
				sid := fmt.Sprintf("seed-%04d", (g*53+i)%200)
				q, err = s.Query(`SELECT id FROM chaos_rows WHERE id = ? LIMIT 1`, value.Str(sid))
				if err != nil {
					fail("seed read %s: %v", sid, err)
					return
				}
				reads.Add(1)
				if len(q.Rows) != 1 {
					fail("seed row %s unreadable: got %d rows", sid, len(q.Rows))
					return
				}
			}
		}(g)
	}

	// The conditional-writer fleet: raw TestAndSet races on shared store
	// keys, each writer expecting the value it just read and installing a
	// globally unique one. Accepted swaps are recorded for the serial
	// model audit after the run.
	type casSwap struct{ key, expect, update string }
	var casMu sync.Mutex
	var casAccepted []casSwap
	casKey := func(i int) []byte { return []byte(fmt.Sprintf("chaos-cas-%02d", i%cfg.CASKeys)) }
	for g := 0; g < cfg.CASWriters; g++ {
		wg.Add(1)
		//lint:allow goroleak — CAS fleet is wg-joined with a bounded CASOpsPerWriter loop; the opaque call is the casKey closure, which only formats a key.
		go func(g int) {
			defer wg.Done()
			cl := cluster.NewClient(nil)
			for i := 0; i < cfg.CASOpsPerWriter; i++ {
				k := casKey(g + i)
				cur, _ := cl.Get(k) // nil = absent
				up := []byte(fmt.Sprintf("cas-w%02d-%06d", g, i))
				swapped, err := cl.TestAndSet(k, cur, up)
				if err != nil {
					// Transient (primary dead past the retry budget): no
					// decision was made, so this attempt simply retries —
					// after a pause, so the fleet does not burn its whole
					// attempt budget inside one fault window.
					time.Sleep(time.Millisecond) //lint:allow simsleep — wall-clock fault-window pacing; the cluster is immediate-mode
					continue
				}
				if swapped {
					casMu.Lock()
					casAccepted = append(casAccepted, casSwap{string(k), string(cur), string(up)})
					casMu.Unlock()
				}
			}
		}(g)
	}

	// The storm: build an index and rebalance, all while the fleet
	// writes — and, under a fault schedule, crash/partition the victim
	// node mid-storm. The kill is issued concurrently with a rebalance
	// so it lands inside the move windows; the partition window is paced
	// past the lease duration so a later rebalance reclaims the victim's
	// ranges while it is unreachable.
	stormErr := make(chan error, 1)
	var rebalanced, kills, partitions atomic.Int64
	// The victim choice is load-bearing. Record keys sort before
	// index-entry keys, so the head partitions hold the table's records
	// and the tail partitions hold index entries; under the arithmetic
	// placement (partition p is owned by nodes p and p+1) each node is
	// primary of partition <id> and secondary of partition <id>-1.
	// Killing the tail node takes only index ranges offline — the
	// fleet's record reads never route to it and failover goes
	// unexercised. Killing a record partition's *primary* parks every
	// writer whose TestAndSet needs it (the 60s-lease kill schedule
	// pins ownership), choking the very traffic the outage should land
	// on. Node 3 is the sweet spot: secondary of the record-carrying
	// partition holding most writers' keys — so reads route to it half
	// the time (failover is demonstrably load-bearing) and acked writes
	// queue catch-ups on it (replay is demonstrably load-bearing) —
	// while its own primary ranges hold only index entries, whose plain
	// puts queue rather than park.
	victim := 3
	wg.Add(1)
	//lint:allow goroleak — storm driver is wg-joined; the opaque call is the doRebalance closure over Cluster.Rebalance, which returns, and the fault schedule is finite.
	go func() {
		defer wg.Done()
		defer stormDone.Store(true)
		s := eng.Session(nil)
		if err := s.Exec(`CREATE INDEX chaos_grp ON chaos_rows (grp, id)`); err != nil {
			stormErr <- err
			return
		}
		doRebalance := func() {
			cluster.Rebalance()
			rebalanced.Add(1)
		}
		used := 0
		if f == nil {
			for ; used < cfg.Rebalances; used++ {
				doRebalance()
			}
			stormErr <- nil
			return
		}
		// Fault schedule, gated on the writer fleet's read-back count so
		// the outage window always has live traffic inside it: the fleet
		// keeps writing until stormDone, so waiting for a delta of
		// read-backs before the fault — and another before recovery —
		// guarantees acked writes, failover reads, and conditional
		// decisions inside the window. The timeout matters during an
		// outage: once every writer is parked retrying an op whose
		// primary is the dead victim, reads stop advancing — and the
		// recovery this wait gates is the only thing that can unpark
		// them.
		waitReads := func(delta int64) {
			target := reads.Load() + delta
			deadline := time.Now().Add(2 * time.Second)
			for reads.Load() < target && writersAlive.Load() > 0 && time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond) //lint:allow simsleep — wall-clock fleet pacing; the cluster is immediate-mode
			}
		}
		doRebalance()
		used++
		waitReads(300)
		if f.KillRestart {
			// The crash is issued concurrently with a rebalance so it
			// lands inside the move windows.
			killDone := make(chan struct{})
			go func() {
				cluster.Kill(victim)
				kills.Add(1)
				close(killDone)
			}()
			doRebalance()
			used++
			<-killDone
		}
		if f.Partition {
			keep := make([]int, 0, cfg.Nodes-1)
			for id := 0; id < cfg.Nodes; id++ {
				if id != victim {
					keep = append(keep, id)
				}
			}
			cluster.Partition(keep)
			partitions.Add(1)
			// Let the victim's leases lapse, then rebalance: the victim's
			// ranges are reclaimed while it is still partitioned away.
			time.Sleep(f.lease() + f.lease()/4) //lint:allow simsleep — wall-clock lease expiry; the cluster is immediate-mode
			doRebalance()
			used++
		}
		// Mid-outage rebalance: moves must survive a dead owner.
		doRebalance()
		used++
		waitReads(800)
		if f.KillRestart {
			cluster.Restart(victim)
		}
		if f.Partition {
			cluster.Heal()
		}
		for ; used < cfg.Rebalances; used++ {
			doRebalance()
		}
		// Safety net: whatever the schedule left down comes back now, so
		// the drain converges. The falsification knobs
		// (DisableCatchUpReplay) still leave recovered nodes stale —
		// that breakage is the point.
		cluster.Heal()
		if cluster.NodeDown(victim) {
			cluster.Restart(victim)
		}
		stormErr <- nil
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	if err := <-stormErr; err != nil {
		return nil, err
	}

	// Serial model check of every conditional outcome: per key the
	// accepted swaps must chain — one accept per state, starting from
	// absent, ending at the stored value. A fork means two swaps were
	// accepted from the same state (a double-accept across an epoch
	// flip); a short or mis-terminated chain means an accepted swap was
	// lost.
	auditCl := cluster.NewClient(nil)
	chains := make(map[string]map[string]casSwap)
	for _, sw := range casAccepted {
		m := chains[sw.key]
		if m == nil {
			m = make(map[string]casSwap)
			chains[sw.key] = m
		}
		if prev, dup := m[sw.expect]; dup {
			return nil, fmt.Errorf("chaos: double-accepted TestAndSet on %s: %q and %q both won from state %q",
				sw.key, prev.update, sw.update, sw.expect)
		}
		m[sw.expect] = sw
	}
	for i := 0; i < cfg.CASKeys; i++ {
		k := string(casKey(i))
		chain := chains[k]
		cur := ""
		steps := 0
		for {
			sw, ok := chain[cur]
			if !ok {
				break
			}
			cur = sw.update
			steps++
		}
		if steps != len(chain) {
			return nil, fmt.Errorf("chaos: %s has %d accepted swaps but the serial chain explains %d",
				k, len(chain), steps)
		}
		got, ok := auditCl.Get([]byte(k))
		if cur == "" {
			if ok {
				return nil, fmt.Errorf("chaos: %s should be absent, holds %q", k, got)
			}
		} else if !ok || string(got) != cur {
			return nil, fmt.Errorf("chaos: lost accepted swap on %s: chain ends at %q, store holds %q (present=%v)",
				k, cur, got, ok)
		}
	}
	res.CASAccepted = int64(len(casAccepted))
	res.FenceRejects = cluster.FenceRejects()

	// Convergence audit: with the fleet drained, every replica of every
	// key must hold the identical versioned value — the invariant the
	// hybrid-timestamp write path guarantees (racing Put/Delete from
	// different clients used to diverge replicas permanently). Audited
	// once as-is, then again after force-sweeping every delete tombstone
	// (safe: the cluster is quiesced), proving GC does not disturb the
	// converged state.
	if err := cluster.AuditConvergence(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	res.TombsSwept = int64(cluster.GCTombstones(0))
	if err := cluster.AuditConvergence(); err != nil {
		return nil, fmt.Errorf("chaos: post-GC: %w", err)
	}

	// Audit: the index is ready and mirrors the records exactly.
	cat := eng.Catalog()
	tbl := cat.Table("chaos_rows")
	var ix *schema.Index
	for _, cand := range cat.Indexes("chaos_rows") {
		if !cand.Primary {
			ix = cand
		}
	}
	if ix == nil {
		return nil, fmt.Errorf("chaos: secondary index missing from catalog")
	}
	if st := cat.IndexState(ix); st != schema.StateReady {
		return nil, fmt.Errorf("chaos: index state %v after build, want ready", st)
	}
	cl := cluster.NewClient(nil)
	rp := index.RecordPrefix(tbl)
	want := make(map[string]bool)
	for _, kv := range cl.GetRange(kvstore.RangeRequest{Start: rp, End: codec.PrefixEnd(rp)}) {
		row, err := value.DecodeRow(kv.Value)
		if err != nil {
			return nil, fmt.Errorf("chaos: corrupt record: %w", err)
		}
		res.Records++
		for _, ekey := range index.EntryKeys(ix, tbl, row) {
			want[string(ekey)] = true
		}
	}
	// Deletes racing the backfill are swept by the build-tombstone pass
	// inside CREATE INDEX, so they no longer dangle. What GC may still
	// collect is the documented insert-rollback sliver (a duplicate
	// insert's rollback racing the winner's entry writes) — Section
	// 7.2's GC-able fallout class. Collect that, then require the index
	// to mirror the records exactly. A *missing* entry is never
	// tolerable: that is the write gap the online-build protocol closes.
	gc := index.NewMaintainer(eng)
	if _, err := gc.GCDangling(cl, ix); err != nil {
		return nil, fmt.Errorf("chaos: gc: %w", err)
	}
	ip := index.IndexPrefix(ix)
	for _, kv := range cl.GetRange(kvstore.RangeRequest{Start: ip, End: codec.PrefixEnd(ip)}) {
		res.Entries++
		if !want[string(kv.Key)] {
			return nil, fmt.Errorf("chaos: dangling index entry %q survived GC", kv.Key)
		}
		delete(want, string(kv.Key))
	}
	for k := range want {
		return nil, fmt.Errorf("chaos: record missing its index entry %q", []byte(k))
	}

	res.Inserted = inserted.Load()
	res.Deleted = deleted.Load()
	res.Reads = reads.Load()
	res.Rebalances = int(rebalanced.Load())
	res.Epoch = cluster.Epoch()
	res.Kills = kills.Load()
	res.Partitions = partitions.Load()
	res.CatchUpsQueued = cluster.CatchUpsQueued()
	res.CatchUpsReplayed = cluster.CatchUpsReplayed()
	res.RetriedOps = retried.Load()
	return res, nil
}

func grpName(i int) string { return fmt.Sprintf("grp-%02d", i%16) }

// Print renders the run summary.
func (r *ChaosResult) Print(out io.Writer) {
	fmt.Fprintf(out, "chaos: online backfill + %d rebalances under live writes\n", r.Rebalances)
	fmt.Fprintf(out, "  inserted %d, deleted %d, read-back checks %d\n", r.Inserted, r.Deleted, r.Reads)
	fmt.Fprintf(out, "  conditional writers: %d accepted swaps, all model-checked; %d fence retries\n",
		r.CASAccepted, r.FenceRejects)
	fmt.Fprintf(out, "  replicas converged (byte-identical per key); %d tombstones swept\n", r.TombsSwept)
	if r.Kills > 0 || r.Partitions > 0 {
		fmt.Fprintf(out, "  faults: %d kills, %d partitions; %d writes queued for dead nodes, %d replayed; %d ops retried\n",
			r.Kills, r.Partitions, r.CatchUpsQueued, r.CatchUpsReplayed, r.RetriedOps)
	}
	fmt.Fprintf(out, "  final: %d records, %d index entries, routing epoch %d — clean\n\n",
		r.Records, r.Entries, r.Epoch)
}
