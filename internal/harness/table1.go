package harness

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"piql/internal/engine"
	"piql/internal/exec"
	"piql/internal/kvstore"
	"piql/internal/predict"
	"piql/internal/sim"
	"piql/internal/stats"
	"piql/internal/workload/scadr"
	"piql/internal/workload/tpcw"
)

// QuerySpec is one Table 1 row: a prepared query plus a parameter
// generator.
type QuerySpec struct {
	Name string
	SQL  string
	Gen  func(r *rand.Rand) []valueT
}

type valueT = valueValue

// Table1Row is one measured/predicted query.
type Table1Row struct {
	Benchmark string
	Name      string
	Indexes   []string
	Actual99  time.Duration
	Predicted time.Duration
}

// Table1Config sizes the Table 1 experiment: per-query latencies
// measured on a 10-node cluster across intervals (actual = max
// per-interval 99th percentile, as the paper reports), compared with
// the trained model's prediction.
type Table1Config struct {
	Nodes      int
	Intervals  int
	IntervalMS int // virtual milliseconds per interval
	PerQuery   int // executions per query per interval
	Seed       int64
}

// DefaultTable1Config mirrors the paper's 10-node setup, scaled.
func DefaultTable1Config() Table1Config {
	return Table1Config{Nodes: 10, Intervals: 12, IntervalMS: 4000, PerQuery: 40, Seed: 3}
}

// RunTable1 measures every TPC-W and SCADr query from Table 1 and
// predicts each with the model.
func RunTable1(model *predict.Model, cfg Table1Config) ([]Table1Row, error) {
	var rows []Table1Row
	tp, err := runTable1TPCW(model, cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, tp...)
	sc, err := runTable1SCADr(model, cfg)
	if err != nil {
		return nil, err
	}
	return append(rows, sc...), nil
}

// measureQueries runs each prepared query repeatedly per interval and
// returns the max per-interval 99th percentile per query.
func measureQueries(env *sim.Env, eng *engine.Engine, specs []preparedSpec, cfg Table1Config) map[string]time.Duration {
	interval := time.Duration(cfg.IntervalMS) * time.Millisecond
	perInterval := make(map[string][][]time.Duration) // name -> interval -> samples
	for _, sp := range specs {
		perInterval[sp.name] = make([][]time.Duration, cfg.Intervals)
	}
	env.Spawn(func(p *sim.Proc) {
		s := eng.Session(p)
		s.SetStrategy(exec.Parallel)
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0xBEEF))
		for iv := 0; iv < cfg.Intervals; iv++ {
			intervalEnd := time.Duration(iv+1) * interval
			for rep := 0; rep < cfg.PerQuery; rep++ {
				for _, sp := range specs {
					t0 := p.Now()
					if _, err := sp.q.Execute(s, sp.gen(rng)...); err != nil {
						panic(fmt.Sprintf("harness: table1 %s: %v", sp.name, err))
					}
					perInterval[sp.name][iv] = append(perInterval[sp.name][iv], p.Now()-t0)
				}
				if remaining := intervalEnd - p.Now(); remaining > 0 {
					p.Sleep(remaining / time.Duration(cfg.PerQuery-rep))
				}
			}
			if p.Now() < intervalEnd {
				p.Sleep(intervalEnd - p.Now())
			}
		}
	})
	env.Run(0)
	env.Stop()

	out := make(map[string]time.Duration)
	for name, ivs := range perInterval {
		var worst time.Duration
		for _, samples := range ivs {
			if p99 := stats.Percentile(samples, 99); p99 > worst {
				worst = p99
			}
		}
		out[name] = worst
	}
	return out
}

type preparedSpec struct {
	name string
	q    *engine.Prepared
	gen  func(r *rand.Rand) []valueT
}

func runTable1TPCW(model *predict.Model, cfg Table1Config) ([]Table1Row, error) {
	env := sim.NewEnv()
	cluster := kvstore.New(kvstore.Config{Nodes: cfg.Nodes, ReplicationFactor: 2, Seed: cfg.Seed}, env)
	eng := engine.New(cluster)
	loader := eng.Session(nil)
	wcfg := tpcw.DefaultConfig()
	wcfg.CustomersPerNode = 300
	for _, ddl := range tpcw.DDL(wcfg) {
		if err := loader.Exec(ddl); err != nil {
			return nil, err
		}
	}
	customers, items, err := tpcw.Load(loader, wcfg, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	// Seed a shopping cart for the Buy Request row.
	for i := 0; i < 25; i++ {
		if err := loader.Exec(`INSERT INTO cart_line VALUES (?, ?, ?)`,
			intV(777), intV(int64(i)), intV(1)); err != nil {
			return nil, err
		}
	}

	names := tpcwTable1Order
	sqls := tpcw.QuerySQL()
	gens := tpcwGens(customers, items)
	var specs []preparedSpec
	for _, name := range names {
		q, err := loader.Prepare(sqls[name])
		if err != nil {
			return nil, fmt.Errorf("prepare %s: %w", name, err)
		}
		specs = append(specs, preparedSpec{name: name, q: q, gen: gens[name]})
	}
	cluster.Rebalance()
	actuals := measureQueries(env, eng, specs, cfg)

	var rows []Table1Row
	for _, sp := range specs {
		pred, err := model.PredictPlan(sp.q.Plan())
		if err != nil {
			return nil, fmt.Errorf("predict %s: %w", sp.name, err)
		}
		rows = append(rows, Table1Row{
			Benchmark: "TPC-W",
			Name:      sp.name,
			Indexes:   secondaryIndexNames(sp.q),
			Actual99:  actuals[sp.name],
			Predicted: pred.Max99,
		})
	}
	return rows, nil
}

var tpcwTable1Order = []string{
	"Home WI",
	"New Products WI",
	"Product Detail WI",
	"Search By Author WI",
	"Search By Title WI",
	"Order Display WI Get Customer",
	"Order Display WI Get Last Order",
	"Order Display WI Get OrderLines",
	"Buy Request WI",
}

func tpcwGens(customers, items int) map[string]func(*rand.Rand) []valueT {
	uname := func(r *rand.Rand) []valueT { return []valueT{strV(tpcw.CustomerName(r.Intn(customers)))} }
	item := func(r *rand.Rand) []valueT { return []valueT{intV(int64(r.Intn(items)))} }
	return map[string]func(*rand.Rand) []valueT{
		"Home WI":           uname,
		"New Products WI":   func(r *rand.Rand) []valueT { return []valueT{strV(tpcw.Subjects[r.Intn(len(tpcw.Subjects))])} },
		"Product Detail WI": item,
		"Search By Author WI": func(r *rand.Rand) []valueT {
			return []valueT{intV(int64(r.Intn(items/10 + 1)))}
		},
		"Search By Title WI": func(r *rand.Rand) []valueT {
			words := []string{"shadow", "river", "night", "garden", "empire"}
			return []valueT{strV(words[r.Intn(len(words))])}
		},
		"Order Display WI Get Customer":   uname,
		"Order Display WI Get Last Order": uname,
		"Order Display WI Get OrderLines": func(r *rand.Rand) []valueT { return []valueT{intV(int64(1 + r.Intn(customers)))} },
		"Buy Request WI":                  func(r *rand.Rand) []valueT { return []valueT{intV(777)} },
	}
}

func runTable1SCADr(model *predict.Model, cfg Table1Config) ([]Table1Row, error) {
	env := sim.NewEnv()
	cluster := kvstore.New(kvstore.Config{Nodes: cfg.Nodes, ReplicationFactor: 2, Seed: cfg.Seed + 1}, env)
	eng := engine.New(cluster)
	loader := eng.Session(nil)
	wcfg := scadr.DefaultConfig()
	wcfg.UsersPerNode = 500
	for _, ddl := range scadr.DDL(wcfg) {
		if err := loader.Exec(ddl); err != nil {
			return nil, err
		}
	}
	users, err := scadr.Load(loader, wcfg, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	worker, err := scadr.NewWorker(loader, wcfg, users, 1)
	if err != nil {
		return nil, err
	}
	gen := func(r *rand.Rand) []valueT { return []valueT{strV(scadr.UserName(r.Intn(users)))} }
	var specs []preparedSpec
	order := []string{"Users Followed", "Recent Thoughts", "Thoughtstream", "Find User"}
	qs := worker.Queries()
	for _, name := range order {
		specs = append(specs, preparedSpec{name: name, q: qs[name], gen: gen})
	}
	cluster.Rebalance()
	actuals := measureQueries(env, eng, specs, cfg)

	var rows []Table1Row
	for _, sp := range specs {
		pred, err := model.PredictPlan(sp.q.Plan())
		if err != nil {
			return nil, fmt.Errorf("predict %s: %w", sp.name, err)
		}
		rows = append(rows, Table1Row{
			Benchmark: "SCADr",
			Name:      sp.name,
			Indexes:   secondaryIndexNames(sp.q),
			Actual99:  actuals[sp.name],
			Predicted: pred.Max99,
		})
	}
	return rows, nil
}

// secondaryIndexNames lists the non-primary indexes a plan reads, as
// Table 1's "Additional Indexes" column does.
func secondaryIndexNames(q *engine.Prepared) []string {
	var out []string
	for _, ix := range q.Plan().RequiredIndexes {
		if !ix.Primary {
			out = append(out, ix.String())
		}
	}
	sort.Strings(out)
	return out
}

// PrintTable1 renders the table.
func PrintTable1(out io.Writer, rows []Table1Row) {
	fmt.Fprintln(out, "Table 1: per-query actual vs predicted 99th-percentile response time")
	fmt.Fprintf(out, "%-8s %-33s %12s %14s  %s\n", "bench", "query", "actual (ms)", "predicted (ms)", "additional indexes")
	var diffs []float64
	for _, r := range rows {
		fmt.Fprintf(out, "%-8s %-33s %12.0f %14.0f  %s\n",
			r.Benchmark, r.Name, msF(r.Actual99), msF(r.Predicted), strings.Join(r.Indexes, "; "))
		diffs = append(diffs, msF(r.Predicted)-msF(r.Actual99))
	}
	var sum float64
	over := 0
	for _, d := range diffs {
		sum += d
		if d >= 0 {
			over++
		}
	}
	fmt.Fprintf(out, "mean (predicted - actual) = %.1f ms; conservative (>=0) for %d/%d queries\n\n",
		sum/float64(len(diffs)), over, len(diffs))
}
