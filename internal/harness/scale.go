// Package harness drives the paper's experiments (Section 8): the scale
// sweeps of Figures 8-11, the per-query prediction accuracy of Table 1,
// the cardinality heatmap of Figure 6, the optimizer comparison of
// Figure 7, the executor comparison of Figure 12, and the query scaling
// classes of Figure 1. Each driver prints the same rows/series the
// paper reports.
package harness

import (
	"fmt"
	"io"
	"time"

	"piql/internal/engine"
	"piql/internal/exec"
	"piql/internal/kvstore"
	"piql/internal/sim"
	"piql/internal/stats"
)

// ScaleConfig controls a throughput/latency scale sweep. As in the
// paper: one client machine per two storage nodes, ten threads per
// client, data volume proportional to nodes, two-fold replication, and
// no think time.
type ScaleConfig struct {
	NodeCounts       []int
	ThreadsPerClient int
	Warmup           time.Duration
	Measure          time.Duration
	Seed             int64
	Strategy         exec.Strategy
	// ThinkTime, when non-zero, is slept between interactions. The scale
	// sweeps follow the paper and omit it; the executor comparison uses
	// it to offer every strategy the same load.
	ThinkTime time.Duration
}

// DefaultScaleConfig mirrors the paper's sweep (20-100 storage nodes).
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{
		NodeCounts:       []int{20, 40, 60, 80, 100},
		ThreadsPerClient: 10,
		Warmup:           time.Second,
		Measure:          3 * time.Second,
		Seed:             1,
		Strategy:         exec.Parallel,
	}
}

// Workload abstracts a benchmark for the scale runner.
type Workload struct {
	Name string
	// DDL returns the schema statements.
	DDL func(nodes int) []string
	// Load bulk-loads data sized for the node count and returns a
	// context handle passed to NewInteraction.
	Load func(s *engine.Session, nodes int) (any, error)
	// NewInteraction builds one client thread's interaction function.
	NewInteraction func(s *engine.Session, ctx any, workerID int64) (func() error, error)
}

// ScalePoint is one measured cluster size.
type ScalePoint struct {
	Nodes        int
	Clients      int
	Interactions int
	Throughput   float64 // web interactions per second
	P99          time.Duration
	Mean         time.Duration
}

// RunScalePoint measures one cluster size: it builds a simulated
// cluster, loads proportional data, runs the client fleet on virtual
// time, and reports throughput and tail latency.
func RunScalePoint(w Workload, cfg ScaleConfig, nodes int) (ScalePoint, error) {
	env := sim.NewEnv()
	cluster := kvstore.New(kvstore.Config{
		Nodes:             nodes,
		ReplicationFactor: 2,
		Seed:              cfg.Seed,
	}, env)
	eng := engine.New(cluster)

	loader := eng.Session(nil)
	for _, ddl := range w.DDL(nodes) {
		if err := loader.Exec(ddl); err != nil {
			return ScalePoint{}, fmt.Errorf("harness: ddl: %w", err)
		}
	}
	ctx, err := w.Load(loader, nodes)
	if err != nil {
		return ScalePoint{}, err
	}
	// Warm the plan cache (and build all indexes) before data spreads,
	// then repartition evenly, as the SCADS Director would.
	warm := eng.Session(nil)
	if _, err := w.NewInteraction(warm, ctx, -1); err != nil {
		return ScalePoint{}, err
	}
	cluster.Rebalance()

	clients := nodes / 2
	if clients < 1 {
		clients = 1
	}
	var latencies []time.Duration
	interactions := 0
	var runErr error
	end := cfg.Warmup + cfg.Measure

	for c := 0; c < clients; c++ {
		for th := 0; th < cfg.ThreadsPerClient; th++ {
			workerID := int64(c*cfg.ThreadsPerClient + th)
			env.Spawn(func(p *sim.Proc) {
				s := eng.Session(p)
				s.SetStrategy(cfg.Strategy)
				interact, err := w.NewInteraction(s, ctx, workerID)
				if err != nil {
					if runErr == nil {
						runErr = err
					}
					return
				}
				for {
					t0 := p.Now()
					if err := interact(); err != nil {
						if runErr == nil {
							runErr = err
						}
						return
					}
					t1 := p.Now()
					if t1 > end {
						return
					}
					if t0 >= cfg.Warmup {
						latencies = append(latencies, t1-t0)
						interactions++
					}
					if cfg.ThinkTime > 0 {
						p.Sleep(cfg.ThinkTime)
					}
				}
			})
		}
	}
	env.Run(end)
	env.Stop()
	if runErr != nil {
		return ScalePoint{}, runErr
	}
	return ScalePoint{
		Nodes:        nodes,
		Clients:      clients,
		Interactions: interactions,
		Throughput:   float64(interactions) / cfg.Measure.Seconds(),
		P99:          stats.Percentile(latencies, 99),
		Mean:         stats.Mean(latencies),
	}, nil
}

// ScaleResult is a full sweep with its linearity fit.
type ScaleResult struct {
	Workload string
	Points   []ScalePoint
	Fit      stats.LinearFit // throughput vs nodes (the paper reports R²)
}

// RunScale sweeps all configured node counts.
func RunScale(w Workload, cfg ScaleConfig) (*ScaleResult, error) {
	res := &ScaleResult{Workload: w.Name}
	var xs, ys []float64
	for _, n := range cfg.NodeCounts {
		pt, err := RunScalePoint(w, cfg, n)
		if err != nil {
			return nil, fmt.Errorf("harness: %s at %d nodes: %w", w.Name, n, err)
		}
		res.Points = append(res.Points, pt)
		xs = append(xs, float64(n))
		ys = append(ys, pt.Throughput)
	}
	if len(xs) >= 2 {
		res.Fit = stats.FitLine(xs, ys)
	}
	return res, nil
}

// Print renders the sweep as the paper's two figures: throughput vs
// nodes (Figs. 8/10) and 99th-percentile response time vs nodes
// (Figs. 9/11).
func (r *ScaleResult) Print(out io.Writer, figThroughput, figLatency string) {
	fmt.Fprintf(out, "%s: %s throughput (web interactions/sec) vs storage nodes\n", figThroughput, r.Workload)
	fmt.Fprintf(out, "%8s %10s %14s %12s\n", "nodes", "clients", "interactions", "WIPS")
	for _, p := range r.Points {
		fmt.Fprintf(out, "%8d %10d %14d %12.0f\n", p.Nodes, p.Clients, p.Interactions, p.Throughput)
	}
	fmt.Fprintf(out, "linear fit: slope=%.1f WIPS/node, R²=%.5f\n\n", r.Fit.Slope, r.Fit.R2)

	fmt.Fprintf(out, "%s: %s response time vs storage nodes\n", figLatency, r.Workload)
	fmt.Fprintf(out, "%8s %14s %14s\n", "nodes", "99th pct (ms)", "mean (ms)")
	for _, p := range r.Points {
		fmt.Fprintf(out, "%8d %14.1f %14.1f\n", p.Nodes, msF(p.P99), msF(p.Mean))
	}
	fmt.Fprintln(out)
}

func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
