package harness

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"piql/internal/core"
	"piql/internal/engine"
	"piql/internal/exec"
	"piql/internal/index"
	"piql/internal/kvstore"
	"piql/internal/parser"
	"piql/internal/schema"
	"piql/internal/sim"
	"piql/internal/stats"
	"piql/internal/value"
)

// Fig7Config sizes the subscriber-intersection comparison (Section 8.3):
// the scale-independent bounded-random-lookup plan versus the
// cost-based unbounded-index-scan plan, swept over target popularity.
type Fig7Config struct {
	Subscribers []int // popularity sweep (paper: 0..5000)
	Friends     int   // size of the IN list (paper: 50)
	Executions  int   // per point per plan
	Nodes       int
	Seed        int64
}

// DefaultFig7Config mirrors the paper's sweep.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Subscribers: []int{0, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000},
		Friends:     50,
		Executions:  300,
		Nodes:       10,
		Seed:        17,
	}
}

// Fig7Point is one popularity level.
type Fig7Point struct {
	Subscribers  int
	BoundedP99   time.Duration // PIQL plan
	UnboundedP99 time.Duration // cost-based plan
	BoundedOps   int64
	UnboundedOps int64
}

const fig7Query = `
	SELECT * FROM subscriptions
	WHERE target = [1: targetUser] AND owner IN (%s)`

// fig7DDL is the two-table schema both RunFig7 and Fig7Plans compile
// against.
var fig7DDL = []string{
	`CREATE TABLE users (username VARCHAR(24), password VARCHAR(20), PRIMARY KEY (username))`,
	`CREATE TABLE subscriptions (owner VARCHAR(24), target VARCHAR(24), approved BOOLEAN,
		PRIMARY KEY (owner, target),
		FOREIGN KEY (target) REFERENCES users,
		CARDINALITY LIMIT 100 (owner))`,
}

// fig7Plans compiles the subscriber-intersection query both ways
// against cat: the PIQL bounded-random-lookup plan and the cost-based
// baseline's unbounded covering scan (fed the 2009 Twitter average of
// 126 followers per user, which makes the scan look cheap).
func fig7Plans(cat *schema.Catalog, friends int) (bounded, unbounded *core.Plan, err error) {
	params := make([]string, friends)
	for i := range params {
		params[i] = fmt.Sprintf("[%d]", i+2)
	}
	sql := fmt.Sprintf(fig7Query, joinStrings(params, ", "))
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	sel := stmt.(*parser.Select)
	bounded, err = core.Compile(cat, sel)
	if err != nil {
		return nil, nil, fmt.Errorf("fig7: PIQL plan: %w", err)
	}
	unbounded, err = core.CompileCostBased(cat, sel, core.Stats{
		AvgRowsPerKey: map[string]float64{"subscriptions.target": 126},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("fig7: cost-based plan: %w", err)
	}
	if !isUnboundedPlan(unbounded.Root) {
		return nil, nil, fmt.Errorf("fig7: cost-based optimizer unexpectedly chose a bounded plan:\n%s", unbounded.Explain())
	}
	return bounded, unbounded, nil
}

// Fig7Plans compiles the two Figure 7 plans against a fresh catalog —
// for static analysis and SLO prediction without running a cluster.
func Fig7Plans(friends int) (bounded, unbounded *core.Plan, err error) {
	cat := schema.NewCatalog()
	for _, ddl := range fig7DDL {
		stmt, err := parser.Parse(ddl)
		if err != nil {
			return nil, nil, err
		}
		if err := cat.AddTable(stmt.(*parser.CreateTable).Table); err != nil {
			return nil, nil, err
		}
	}
	return fig7Plans(cat, friends)
}

// RunFig7 loads users of increasing popularity and measures both plans.
func RunFig7(cfg Fig7Config) ([]Fig7Point, error) {
	env := sim.NewEnv()
	cluster := kvstore.New(kvstore.Config{Nodes: cfg.Nodes, ReplicationFactor: 2, Seed: cfg.Seed}, env)
	eng := engine.New(cluster)
	loader := eng.Session(nil)
	for _, ddl := range fig7DDL {
		if err := loader.Exec(ddl); err != nil {
			return nil, err
		}
	}
	// One target user per popularity level, followed by that many fans.
	fan := 0
	for _, subs := range cfg.Subscribers {
		target := fmt.Sprintf("celeb%05d", subs)
		if err := loader.Exec(`INSERT INTO users VALUES (?, 'pw')`, value.Str(target)); err != nil {
			return nil, err
		}
		for i := 0; i < subs; i++ {
			fan++
			if err := loader.Exec(`INSERT INTO subscriptions VALUES (?, ?, true)`,
				value.Str(fmt.Sprintf("fan%07d", fan)), value.Str(target)); err != nil {
				return nil, err
			}
		}
	}

	// Build both plans for the IN list, compiling against a private
	// clone: published catalog snapshots are immutable, and the compiler
	// registers the indexes it creates.
	cat := eng.Catalog().Clone()
	bounded, unbounded, err := fig7Plans(cat, cfg.Friends)
	if err != nil {
		return nil, err
	}
	// Backfill any indexes the plans created (the by-target index).
	maint := index.NewMaintainer(cat)
	for _, plan := range []*core.Plan{bounded, unbounded} {
		for _, ix := range plan.RequiredIndexes {
			if _, err := maint.Backfill(loader.Client(), ix); err != nil {
				return nil, err
			}
		}
	}
	cluster.Rebalance()

	var points []Fig7Point
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, subs := range cfg.Subscribers {
		target := fmt.Sprintf("celeb%05d", subs)
		pt := Fig7Point{Subscribers: subs}
		var runErr error
		env.Spawn(func(p *sim.Proc) {
			cl := cluster.NewClient(p)
			run := func(plan *core.Plan) ([]time.Duration, int64) {
				var lat []time.Duration
				cl.ResetOps()
				for i := 0; i < cfg.Executions; i++ {
					args := make([]value.Value, 0, cfg.Friends+1)
					args = append(args, value.Str(target))
					for f := 0; f < cfg.Friends; f++ {
						args = append(args, value.Str(fmt.Sprintf("fan%07d", 1+rng.Intn(max(1, fan)))))
					}
					t0 := p.Now()
					if _, err := exec.Run(plan, &exec.Ctx{Client: cl, Params: args, Strategy: exec.Parallel}); err != nil {
						runErr = err
						return lat, cl.Ops()
					}
					lat = append(lat, p.Now()-t0)
					p.Sleep(5 * time.Millisecond)
				}
				return lat, cl.Ops()
			}
			bl, bops := run(bounded)
			ul, uops := run(unbounded)
			pt.BoundedP99 = stats.Percentile(bl, 99)
			pt.UnboundedP99 = stats.Percentile(ul, 99)
			pt.BoundedOps = bops / int64(cfg.Executions)
			pt.UnboundedOps = uops / int64(cfg.Executions)
		})
		env.Run(0)
		if runErr != nil {
			return nil, runErr
		}
		points = append(points, pt)
	}
	env.Stop()
	return points, nil
}

func isUnboundedPlan(n core.Physical) bool {
	for ; n != nil; n = n.Child() {
		if s, ok := n.(*core.IndexScan); ok && s.Unbounded {
			return true
		}
	}
	return false
}

func joinStrings(xs []string, sep string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}

// PrintFig7 renders the comparison.
func PrintFig7(out io.Writer, points []Fig7Point) {
	fmt.Fprintln(out, "Fig 7: subscriber-intersection query, 99th-percentile response time (ms)")
	fmt.Fprintf(out, "%12s %22s %22s %12s %12s\n",
		"subscribers", "bounded lookups (PIQL)", "unbounded scan (cost)", "PIQL ops", "cost ops")
	for _, p := range points {
		fmt.Fprintf(out, "%12d %22.1f %22.1f %12d %12d\n",
			p.Subscribers, msF(p.BoundedP99), msF(p.UnboundedP99), p.BoundedOps, p.UnboundedOps)
	}
	fmt.Fprintln(out)
}
