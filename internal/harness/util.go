package harness

import "piql/internal/value"

// valueValue aliases the engine's value type for brevity in specs.
type valueValue = value.Value

func strV(s string) value.Value { return value.Str(s) }
func intV(i int64) value.Value  { return value.Int(i) }
