package harness

import (
	"piql/internal/engine"
	"piql/internal/workload/scadr"
	"piql/internal/workload/tpcw"
)

// scadrCtx carries loaded-data facts to the workers.
type scadrCtx struct {
	cfg   scadr.Config
	users int
}

// SCADrWorkload builds the Figure 10/11 workload.
func SCADrWorkload(cfg scadr.Config) Workload {
	return Workload{
		Name: "SCADr",
		DDL:  func(nodes int) []string { return scadr.DDL(cfg) },
		Load: func(s *engine.Session, nodes int) (any, error) {
			users, err := scadr.Load(s, cfg, nodes)
			if err != nil {
				return nil, err
			}
			return &scadrCtx{cfg: cfg, users: users}, nil
		},
		NewInteraction: func(s *engine.Session, ctx any, workerID int64) (func() error, error) {
			c := ctx.(*scadrCtx)
			w, err := scadr.NewWorker(s, c.cfg, c.users, workerID+100)
			if err != nil {
				return nil, err
			}
			return w.Interaction, nil
		},
	}
}

type tpcwCtx struct {
	cfg       tpcw.Config
	customers int
	items     int
}

// TPCWWorkload builds the Figure 8/9 workload (ordering mix).
func TPCWWorkload(cfg tpcw.Config) Workload {
	return tpcwWorkload(cfg, false)
}

// TPCWReadWorkload is the query-only variant used by the executor
// comparison.
func TPCWReadWorkload(cfg tpcw.Config) Workload {
	w := tpcwWorkload(cfg, true)
	w.Name = "TPC-W (queries)"
	return w
}

func tpcwWorkload(cfg tpcw.Config, readOnly bool) Workload {
	return Workload{
		Name: "TPC-W",
		DDL:  func(nodes int) []string { return tpcw.DDL(cfg) },
		Load: func(s *engine.Session, nodes int) (any, error) {
			customers, items, err := tpcw.Load(s, cfg, nodes)
			if err != nil {
				return nil, err
			}
			return &tpcwCtx{cfg: cfg, customers: customers, items: items}, nil
		},
		NewInteraction: func(s *engine.Session, ctx any, workerID int64) (func() error, error) {
			c := ctx.(*tpcwCtx)
			w, err := tpcw.NewWorker(s, c.cfg, c.customers, c.items, workerID+1)
			if err != nil {
				return nil, err
			}
			w.SetReadOnly(readOnly)
			return w.Interaction, nil
		},
	}
}
