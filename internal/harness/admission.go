package harness

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"piql/internal/analyze"
	"piql/internal/core"
	"piql/internal/engine"
	"piql/internal/exec"
	"piql/internal/kvstore"
	"piql/internal/sim"
	"piql/internal/stats"
	"piql/internal/value"
)

// AdmissionConfig sizes the multi-tenant admission-control scenario: a
// well-behaved tenant runs the bounded Figure 7 intersection query
// while a misbehaving tenant hammers the same cluster with the
// cost-based optimizer's unbounded covering scan of a popular user's
// subscriber list. With enforcement off the scan monopolizes the node
// service queues and inflates the good tenant's tail; with enforcement
// on the bad tenant is refused at Prepare with *analyze.ErrUnbounded
// and the good tenant's p99 returns to its solo baseline.
type AdmissionConfig struct {
	Nodes          int
	Subscribers    int // popularity of the user the bad tenant scans
	Friends        int // good tenant's IN-list size
	GoodExecutions int // per phase
	BadWorkers     int // concurrent sessions of the misbehaving tenant
	BadExecutions  int // scan attempts per bad worker per phase
	Seed           int64
}

// DefaultAdmissionConfig is sized so the unbounded scan visibly
// degrades the good tenant on a small cluster: the bad tenant runs
// enough concurrent sessions to saturate the nodes' service capacity
// (each node serves 12 requests at a time).
func DefaultAdmissionConfig() AdmissionConfig {
	return AdmissionConfig{
		Nodes:          4,
		Subscribers:    3000,
		Friends:        50,
		GoodExecutions: 200,
		BadWorkers:     32,
		BadExecutions:  25,
		Seed:           23,
	}
}

// AdmissionResult reports the good tenant's p99 across the three
// phases, plus what happened to the misbehaving tenant.
type AdmissionResult struct {
	BaselineP99  time.Duration // good tenant alone, no bad tenant
	ContendedP99 time.Duration // bad tenant running, enforcement off
	EnforcedP99  time.Duration // bad tenant refused, enforcement on
	BadScans     int           // unbounded scans executed while unenforced
	Refusals     int           // Prepare refusals while enforced
	RefusalErr   error         // representative *analyze.ErrUnbounded
}

const admissionBadSQL = `SELECT * FROM subscriptions WHERE target = [1: t]`

// RunAdmission loads one highly popular user and runs the three
// phases on a shared engine. The simulation is deterministic for a
// given config.
func RunAdmission(cfg AdmissionConfig) (*AdmissionResult, error) {
	env := sim.NewEnv()
	cluster := kvstore.New(kvstore.Config{Nodes: cfg.Nodes, ReplicationFactor: 2, Seed: cfg.Seed}, env)
	eng := engine.New(cluster)
	loader := eng.Session(nil)
	for _, ddl := range fig7DDL {
		if err := loader.Exec(ddl); err != nil {
			return nil, err
		}
	}
	const target = "celeb"
	if err := loader.Exec(`INSERT INTO users VALUES (?, 'pw')`, value.Str(target)); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Subscribers; i++ {
		if err := loader.Exec(`INSERT INTO subscriptions VALUES (?, ?, true)`,
			value.Str(fmt.Sprintf("fan%07d", i+1)), value.Str(target)); err != nil {
			return nil, err
		}
	}

	// The good tenant's bounded plan: intersection over an IN list.
	params := make([]string, cfg.Friends)
	for i := range params {
		params[i] = fmt.Sprintf("[%d]", i+2)
	}
	goodSQL := fmt.Sprintf(fig7Query, joinStrings(params, ", "))
	badStats := core.Stats{AvgRowsPerKey: map[string]float64{"subscriptions.target": 126}}

	// Warm both plans in immediate mode so index builds happen before
	// the clock starts; the unbounded plan is admitted because no
	// enforcement is installed yet.
	if _, err := loader.Prepare(goodSQL); err != nil {
		return nil, err
	}
	if _, err := loader.PrepareCostBased(admissionBadSQL, badStats); err != nil {
		return nil, err
	}
	cluster.Rebalance()

	res := &AdmissionResult{}
	phase := func(withBad, enforce bool) (time.Duration, error) {
		if enforce {
			eng.SetAdmission(&analyze.Policy{Enforce: true})
		} else {
			eng.SetAdmission(&analyze.Policy{})
		}
		var goodLat []time.Duration
		var goodErr, badErr error
		env.Spawn(func(p *sim.Proc) {
			s := eng.Session(p)
			s.SetStrategy(exec.Parallel)
			q, err := s.Prepare(goodSQL)
			if err != nil {
				goodErr = err
				return
			}
			rng := rand.New(rand.NewSource(cfg.Seed + 1))
			for i := 0; i < cfg.GoodExecutions; i++ {
				args := make([]value.Value, 0, cfg.Friends+1)
				args = append(args, value.Str(target))
				for f := 0; f < cfg.Friends; f++ {
					args = append(args, value.Str(fmt.Sprintf("fan%07d", 1+rng.Intn(max(1, cfg.Subscribers)))))
				}
				t0 := p.Now()
				if _, err := q.Execute(s, args...); err != nil {
					goodErr = err
					return
				}
				goodLat = append(goodLat, p.Now()-t0)
				p.Sleep(2 * time.Millisecond)
			}
		})
		if withBad {
			for w := 0; w < cfg.BadWorkers; w++ {
				env.Spawn(func(p *sim.Proc) {
					s := eng.Session(p)
					s.SetStrategy(exec.Parallel)
					for i := 0; i < cfg.BadExecutions; i++ {
						q, err := s.PrepareCostBased(admissionBadSQL, badStats)
						if err != nil {
							var unb *analyze.ErrUnbounded
							if errors.As(err, &unb) {
								res.Refusals++
								res.RefusalErr = err
								p.Sleep(2 * time.Millisecond)
								continue
							}
							badErr = err
							return
						}
						if _, err := q.Execute(s, value.Str(target)); err != nil {
							badErr = err
							return
						}
						res.BadScans++
					}
				})
			}
		}
		env.Run(0)
		if goodErr != nil {
			return 0, goodErr
		}
		if badErr != nil {
			return 0, badErr
		}
		return stats.Percentile(goodLat, 99), nil
	}

	var err error
	if res.BaselineP99, err = phase(false, false); err != nil {
		return nil, err
	}
	if res.ContendedP99, err = phase(true, false); err != nil {
		return nil, err
	}
	if res.EnforcedP99, err = phase(true, true); err != nil {
		return nil, err
	}
	env.Stop()
	return res, nil
}

// PrintAdmission renders the three phases and the refusal.
func PrintAdmission(out io.Writer, cfg AdmissionConfig, res *AdmissionResult) {
	fmt.Fprintf(out, "admission control: good tenant p99 across phases (%d-node cluster, %d-subscriber scan)\n",
		cfg.Nodes, cfg.Subscribers)
	fmt.Fprintf(out, "%34s %12.1fms\n", "baseline (good tenant alone)", msF(res.BaselineP99))
	fmt.Fprintf(out, "%34s %12.1fms  (%d unbounded scans ran)\n",
		"contended (enforcement off)", msF(res.ContendedP99), res.BadScans)
	fmt.Fprintf(out, "%34s %12.1fms  (%d/%d Prepares refused)\n",
		"enforced (unbounded refused)", msF(res.EnforcedP99), res.Refusals, cfg.BadWorkers*cfg.BadExecutions)
	if res.RefusalErr != nil {
		fmt.Fprintf(out, "refusal: %v\n", res.RefusalErr)
	}
	fmt.Fprintln(out)
}
