package harness

import (
	"testing"

	"piql/internal/workload/scadr"
)

// TestRunConcurrentSCADr smoke-tests the real-goroutine throughput
// harness: every point must complete its fixed work, and the op counter
// must see traffic. Under -race this doubles as a concurrency check of
// the whole engine/kvstore stack driven from OS threads.
func TestRunConcurrentSCADr(t *testing.T) {
	cfg := DefaultConcurrentConfig()
	cfg.Goroutines = []int{1, 4}
	cfg.InteractionsPerGoroutine = 30
	scfg := scadr.DefaultConfig()
	scfg.UsersPerNode = 50
	res, err := RunConcurrent(SCADrWorkload(scfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Interactions != p.Goroutines*cfg.InteractionsPerGoroutine {
			t.Errorf("%d goroutines completed %d interactions, want %d",
				p.Goroutines, p.Interactions, p.Goroutines*cfg.InteractionsPerGoroutine)
		}
		if p.QPS <= 0 || p.StoreOps <= 0 {
			t.Errorf("%d goroutines: QPS=%f storeOps=%d, want positive",
				p.Goroutines, p.QPS, p.StoreOps)
		}
	}
}
