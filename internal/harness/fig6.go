package harness

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"piql/internal/engine"
	"piql/internal/exec"
	"piql/internal/kvstore"
	"piql/internal/predict"
	"piql/internal/sim"
	"piql/internal/stats"
	"piql/internal/value"
)

// Fig6Config sizes the thoughtstream cardinality heatmap: predicted
// 99th-percentile latency for every (subscriptions per user, records
// per page) pair — the Performance Insight Assistant's tool for picking
// cardinality limits (Section 6.4).
type Fig6Config struct {
	Subs  []int // rows: number of subscriptions per user
	Pages []int // columns: records per page
	// Actual-measurement subset (full grid would take long).
	ActualSubs  []int
	ActualPages []int
	Executions  int
	Seed        int64
}

// DefaultFig6Config mirrors the paper's axes.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Subs:        []int{100, 150, 200, 250, 300, 350, 400, 450, 500},
		Pages:       []int{10, 15, 20, 25, 30, 35, 40, 45, 50},
		ActualSubs:  []int{100, 300, 500},
		ActualPages: []int{10, 30, 50},
		Executions:  150,
		Seed:        21,
	}
}

// Fig6Result holds the predicted heatmap and the measured subset.
type Fig6Result struct {
	Cfg       Fig6Config
	Predicted [][]time.Duration // [subIdx][pageIdx]
	Actual    map[[2]int]time.Duration
	MeanDiff  time.Duration // mean (predicted - actual) over the subset
}

// thoughtstream per-tuple sizes (β) from the SCADr schema estimates.
const (
	subTupleBytes     = 44
	thoughtTupleBytes = 186
)

// RunFig6 computes the predicted heatmap from the trained model and
// measures a subset of cells for the accuracy claim.
func RunFig6(model *predict.Model, cfg Fig6Config) (*Fig6Result, error) {
	res := &Fig6Result{Cfg: cfg, Actual: make(map[[2]int]time.Duration)}
	for _, subs := range cfg.Subs {
		var row []time.Duration
		for _, page := range cfg.Pages {
			pred, err := model.PredictOps([]predict.Op{
				{Kind: predict.KindScan, Alpha: subs, Beta: subTupleBytes},
				{Kind: predict.KindSortedJoin, Alpha: subs, AlphaJ: page, Beta: thoughtTupleBytes},
			})
			if err != nil {
				return nil, err
			}
			row = append(row, pred.Max99)
		}
		res.Predicted = append(res.Predicted, row)
	}

	// Measure the subset on a live simulated cluster: owners with
	// exactly S subscriptions, targets with enough thoughts per page.
	maxSubs := cfg.ActualSubs[len(cfg.ActualSubs)-1]
	maxPage := cfg.ActualPages[len(cfg.ActualPages)-1]
	env := sim.NewEnv()
	cluster := kvstore.New(kvstore.Config{Nodes: 10, ReplicationFactor: 2, Seed: cfg.Seed}, env)
	eng := engine.New(cluster)
	loader := eng.Session(nil)
	ddl := []string{
		`CREATE TABLE users (username VARCHAR(20), password VARCHAR(20), hometown VARCHAR(30), PRIMARY KEY (username))`,
		fmt.Sprintf(`CREATE TABLE subscriptions (owner VARCHAR(20), target VARCHAR(20), approved BOOLEAN,
			PRIMARY KEY (owner, target), FOREIGN KEY (target) REFERENCES users,
			CARDINALITY LIMIT %d (owner))`, maxSubs),
		`CREATE TABLE thoughts (owner VARCHAR(20), timestamp INT, text VARCHAR(140), PRIMARY KEY (owner, timestamp))`,
	}
	for _, d := range ddl {
		if err := loader.Exec(d); err != nil {
			return nil, err
		}
	}
	// Shared target pool with thoughts.
	for tgt := 0; tgt < maxSubs; tgt++ {
		name := fmt.Sprintf("tgt%04d", tgt)
		if err := loader.Exec(`INSERT INTO users VALUES (?, 'pw', 'SF')`, value.Str(name)); err != nil {
			return nil, err
		}
		for i := 0; i <= maxPage; i++ {
			if err := loader.Exec(`INSERT INTO thoughts VALUES (?, ?, 'text of a thought that is reasonably sized for scadr')`,
				value.Str(name), value.Int(int64(1000+tgt*1000+i))); err != nil {
				return nil, err
			}
		}
	}
	// Owners per measured S: a handful each, subscribing to the first S
	// targets.
	const ownersPer = 4
	for _, subs := range cfg.ActualSubs {
		for o := 0; o < ownersPer; o++ {
			owner := fmt.Sprintf("own%d_%d", subs, o)
			if err := loader.Exec(`INSERT INTO users VALUES (?, 'pw', 'SF')`, value.Str(owner)); err != nil {
				return nil, err
			}
			for tgt := 0; tgt < subs; tgt++ {
				if err := loader.Exec(`INSERT INTO subscriptions VALUES (?, ?, true)`,
					value.Str(owner), value.Str(fmt.Sprintf("tgt%04d", tgt))); err != nil {
					return nil, err
				}
			}
		}
	}
	// Prepare one query per page size.
	plans := make(map[int]*engine.Prepared)
	for _, page := range cfg.ActualPages {
		q, err := loader.Prepare(fmt.Sprintf(`
			SELECT thoughts.owner, thoughts.timestamp, thoughts.text
			FROM subscriptions s JOIN thoughts
			WHERE thoughts.owner = s.target AND s.owner = [1: me] AND s.approved = true
			ORDER BY thoughts.timestamp DESC LIMIT %d`, page))
		if err != nil {
			return nil, err
		}
		plans[page] = q
	}
	cluster.Rebalance()

	samples := make(map[[2]int][]time.Duration)
	env.Spawn(func(p *sim.Proc) {
		s := eng.Session(p)
		s.SetStrategy(exec.Parallel)
		rng := rand.New(rand.NewSource(cfg.Seed))
		for rep := 0; rep < cfg.Executions; rep++ {
			for _, subs := range cfg.ActualSubs {
				owner := fmt.Sprintf("own%d_%d", subs, rng.Intn(ownersPer))
				for _, page := range cfg.ActualPages {
					t0 := p.Now()
					if _, err := plans[page].Execute(s, value.Str(owner)); err != nil {
						panic(fmt.Sprintf("harness: fig6: %v", err))
					}
					samples[[2]int{subs, page}] = append(samples[[2]int{subs, page}], p.Now()-t0)
				}
			}
			p.Sleep(40 * time.Millisecond) // spread across volatility windows
		}
	})
	env.Run(0)
	env.Stop()

	var diffSum time.Duration
	n := 0
	for cell, lat := range samples {
		actual := stats.Percentile(lat, 99)
		res.Actual[cell] = actual
		pred := res.predictedFor(cell[0], cell[1])
		diffSum += pred - actual
		n++
	}
	if n > 0 {
		res.MeanDiff = diffSum / time.Duration(n)
	}
	return res, nil
}

func (r *Fig6Result) predictedFor(subs, page int) time.Duration {
	for i, s := range r.Cfg.Subs {
		if s != subs {
			continue
		}
		for j, p := range r.Cfg.Pages {
			if p == page {
				return r.Predicted[i][j]
			}
		}
	}
	return 0
}

// Print renders the heatmap the way Figure 6 does: subscriptions per
// user (rows) by records per page (columns), milliseconds per cell.
func (r *Fig6Result) Print(out io.Writer) {
	fmt.Fprintln(out, "Fig 6: predicted 99th-percentile latency (ms) for the thoughtstream query")
	fmt.Fprintf(out, "%22s", "subs\\page")
	for _, p := range r.Cfg.Pages {
		fmt.Fprintf(out, "%6d", p)
	}
	fmt.Fprintln(out)
	for i, subs := range r.Cfg.Subs {
		fmt.Fprintf(out, "%22d", subs)
		for j := range r.Cfg.Pages {
			fmt.Fprintf(out, "%6.0f", msF(r.Predicted[i][j]))
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out, "\nmeasured subset (actual 99th percentile, ms):")
	for _, subs := range r.Cfg.ActualSubs {
		for _, page := range r.Cfg.ActualPages {
			cell := [2]int{subs, page}
			fmt.Fprintf(out, "  subs=%3d page=%2d: actual=%5.0f predicted=%5.0f\n",
				subs, page, msF(r.Actual[cell]), msF(r.predictedFor(subs, page)))
		}
	}
	fmt.Fprintf(out, "mean (predicted - actual) over subset: %.0f ms (paper: +13 ms)\n\n", msF(r.MeanDiff))
}
