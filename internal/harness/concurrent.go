package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"piql/internal/engine"
	"piql/internal/exec"
	"piql/internal/kvstore"
	"piql/internal/stats"
)

// ConcurrentConfig controls the real-goroutine throughput harness: the
// same workloads as the scale sweeps, but driven by OS threads against
// one shared engine in immediate mode (no simulated latency), measuring
// wall-clock aggregate QPS and tail latency. This is the proof that one
// engine serves concurrent sessions — throughput should grow with the
// goroutine count instead of serializing on an engine-wide lock.
type ConcurrentConfig struct {
	// Nodes is the simulated cluster size (data volume scales with it).
	Nodes int
	// Goroutines are the session counts to sweep.
	Goroutines []int
	// InteractionsPerGoroutine fixes the work per session, so total work
	// (and ideally throughput) scales with the goroutine count.
	InteractionsPerGoroutine int
	// Seed drives data generation and worker mixes.
	Seed int64
	// Strategy is the execution strategy for every session.
	Strategy exec.Strategy
}

// DefaultConcurrentConfig sweeps 1..16 sessions.
func DefaultConcurrentConfig() ConcurrentConfig {
	return ConcurrentConfig{
		Nodes:                    4,
		Goroutines:               []int{1, 2, 4, 8, 16},
		InteractionsPerGoroutine: 300,
		Seed:                     1,
		Strategy:                 exec.Parallel,
	}
}

// ConcurrentPoint is one measured goroutine count.
type ConcurrentPoint struct {
	Goroutines   int
	Interactions int
	Elapsed      time.Duration
	QPS          float64 // aggregate interactions per wall-clock second
	P99          time.Duration
	Mean         time.Duration
	StoreOps     int64 // key/value operations issued during the point
}

// ConcurrentResult is a full sweep over goroutine counts on one shared
// engine.
type ConcurrentResult struct {
	Workload string
	Points   []ConcurrentPoint
}

// Speedup reports the throughput of the busiest point relative to the
// single-goroutine baseline.
func (r *ConcurrentResult) Speedup() float64 {
	if len(r.Points) < 2 || r.Points[0].QPS == 0 {
		return 1
	}
	best := r.Points[0].QPS
	for _, p := range r.Points[1:] {
		if p.QPS > best {
			best = p.QPS
		}
	}
	return best / r.Points[0].QPS
}

// RunConcurrent loads the workload once, then for each configured count
// spawns that many goroutines — each with its own engine session — and
// measures aggregate throughput and latency percentiles under real
// parallelism. Worker IDs are unique across the whole sweep so the
// workloads' writes (carts, orders, thoughts) never collide.
func RunConcurrent(w Workload, cfg ConcurrentConfig) (*ConcurrentResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Goroutines) == 0 {
		cfg.Goroutines = []int{1, 2, 4, 8}
	}
	if cfg.InteractionsPerGoroutine <= 0 {
		cfg.InteractionsPerGoroutine = 200
	}

	cluster := kvstore.New(kvstore.Config{
		Nodes:             cfg.Nodes,
		ReplicationFactor: 2,
		Seed:              cfg.Seed,
	}, nil)
	eng := engine.New(cluster)
	loader := eng.Session(nil)
	for _, ddl := range w.DDL(cfg.Nodes) {
		if err := loader.Exec(ddl); err != nil {
			return nil, fmt.Errorf("harness: ddl: %w", err)
		}
	}
	ctx, err := w.Load(loader, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	// Warm the plan cache (building all indexes) before the fleet runs,
	// then spread the data as the SCADS Director would.
	if _, err := w.NewInteraction(eng.Session(nil), ctx, -1); err != nil {
		return nil, err
	}
	cluster.Rebalance()

	res := &ConcurrentResult{Workload: w.Name}
	nextWorker := int64(0)
	for _, n := range cfg.Goroutines {
		pt, err := runConcurrentPoint(eng, cluster, w, ctx, cfg, n, &nextWorker)
		if err != nil {
			return nil, fmt.Errorf("harness: %s at %d goroutines: %w", w.Name, n, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func runConcurrentPoint(eng *engine.Engine, cluster *kvstore.Cluster, w Workload, ctx any,
	cfg ConcurrentConfig, n int, nextWorker *int64) (ConcurrentPoint, error) {
	latencies := make([][]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	opsBefore := cluster.TotalOps()
	start := time.Now()
	for g := 0; g < n; g++ {
		workerID := *nextWorker
		*nextWorker++
		wg.Add(1)
		//lint:allow goroleak — wg-joined worker with a bounded interaction loop; the opaque call is the workload's NewInteraction func field.
		go func(g int, workerID int64) {
			defer wg.Done()
			s := eng.Session(nil)
			s.SetStrategy(cfg.Strategy)
			interact, err := w.NewInteraction(s, ctx, workerID)
			if err != nil {
				errs[g] = err
				return
			}
			ls := make([]time.Duration, 0, cfg.InteractionsPerGoroutine)
			for i := 0; i < cfg.InteractionsPerGoroutine; i++ {
				t0 := time.Now()
				if err := interact(); err != nil {
					errs[g] = err
					return
				}
				ls = append(ls, time.Since(t0))
			}
			latencies[g] = ls
		}(g, workerID)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ConcurrentPoint{}, err
		}
	}
	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	return ConcurrentPoint{
		Goroutines:   n,
		Interactions: len(all),
		Elapsed:      elapsed,
		QPS:          float64(len(all)) / elapsed.Seconds(),
		P99:          stats.Percentile(all, 99),
		Mean:         stats.Mean(all),
		StoreOps:     cluster.TotalOps() - opsBefore,
	}, nil
}

// Print renders the sweep: aggregate QPS and p99 per goroutine count.
func (r *ConcurrentResult) Print(out io.Writer) {
	fmt.Fprintf(out, "%s: aggregate throughput vs concurrent sessions (one engine, real goroutines)\n", r.Workload)
	fmt.Fprintf(out, "%12s %14s %12s %12s %12s\n", "goroutines", "interactions", "QPS", "p99 (ms)", "mean (ms)")
	for _, p := range r.Points {
		fmt.Fprintf(out, "%12d %14d %12.0f %12.3f %12.3f\n",
			p.Goroutines, p.Interactions, p.QPS, msF(p.P99), msF(p.Mean))
	}
	fmt.Fprintf(out, "speedup at best point: %.2fx over 1 goroutine\n\n", r.Speedup())
}
