package harness

import (
	"io"
	"testing"
)

// TestChaosOnlineOperations gates the online paths in CI (make race runs
// it under the race detector): writers hammer the engine while an index
// backfills and the cluster rebalances repeatedly. RunChaos returns an
// error on any failed read, lost key, missing index entry, or
// un-GC-able dangling entry.
func TestChaosOnlineOperations(t *testing.T) {
	cfg := DefaultChaosConfig()
	if testing.Short() {
		cfg.Writers = 4
		cfg.OpsPerWriter = 100
		cfg.Rebalances = 3
	}
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted == 0 || res.Deleted == 0 || res.Reads == 0 {
		t.Fatalf("chaos exercised nothing: %+v", res)
	}
	if res.Rebalances != cfg.Rebalances {
		t.Fatalf("completed %d rebalances, want %d", res.Rebalances, cfg.Rebalances)
	}
	if res.Epoch != int64(2*(cfg.Rebalances+1)) {
		t.Fatalf("final epoch %d, want %d", res.Epoch, 2*(cfg.Rebalances+1))
	}
	if res.Records == 0 || res.Entries != res.Records {
		t.Fatalf("audit mismatch: %d records, %d entries", res.Records, res.Entries)
	}
	res.Print(io.Discard)
}
