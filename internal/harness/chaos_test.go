package harness

import (
	"io"
	"testing"
)

// TestChaosOnlineOperations gates the online paths in CI (make race runs
// it under the race detector): writers hammer the engine — and a
// conditional-writer fleet races TestAndSet on shared keys — while an
// index backfills and the cluster runs repeated chunked rebalances.
// RunChaos returns an error on any failed read, lost key, missing index
// entry, un-GC-able dangling entry, or any conditional outcome the
// serial model cannot explain (double-accepted or lost swaps).
func TestChaosOnlineOperations(t *testing.T) {
	cfg := DefaultChaosConfig()
	if testing.Short() {
		cfg.Writers = 4
		// Must exceed the writer fleet's 119-id cycle: the delete branch
		// only fires on a row a *previous* iteration inserted at the same
		// id, which first happens once i wraps past 119.
		cfg.OpsPerWriter = 150
		cfg.Rebalances = 3
		cfg.CASWriters = 3
		cfg.CASOpsPerWriter = 150
	}
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted == 0 || res.Deleted == 0 || res.Reads == 0 {
		t.Fatalf("chaos exercised nothing: %+v", res)
	}
	if res.CASAccepted == 0 {
		t.Fatalf("conditional-writer fleet accepted nothing: %+v", res)
	}
	if res.Rebalances != cfg.Rebalances {
		t.Fatalf("completed %d rebalances, want %d", res.Rebalances, cfg.Rebalances)
	}
	if res.Epoch != int64(2*(cfg.Rebalances+1)) {
		t.Fatalf("final epoch %d, want %d", res.Epoch, 2*(cfg.Rebalances+1))
	}
	if res.Records == 0 || res.Entries != res.Records {
		t.Fatalf("audit mismatch: %d records, %d entries", res.Records, res.Entries)
	}
	res.Print(io.Discard)
}

// faultChaosConfig sizes the run so fault injection is guaranteed to
// land mid-traffic: the storm gates each fault on fleet progress, and
// the fleet has several times that many operations to give.
func faultChaosConfig() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.Writers = 6
	cfg.OpsPerWriter = 500
	cfg.Rebalances = 8
	cfg.CASWriters = 4
	cfg.CASOpsPerWriter = 250
	return cfg
}

// TestChaosSurvivesKillRestartMidRebalance crashes a node concurrently
// with a mid-storm rebalance and restarts it two rebalances later,
// while the writer fleet, the CAS fleet, and an index backfill hammer
// the cluster. The lease is pinned long (60s), so ownership never moves
// off the dead node: recovery rides entirely on read failover during
// the outage and catch-up replay at restart. Zero acked writes may be
// lost (read-your-writes on every op), the CAS serial model must
// explain every accepted swap, and all replicas must converge
// byte-for-byte after recovery. The falsification subtests prove both
// mechanisms are load-bearing: disabling either one must break the
// same run.
func TestChaosSurvivesKillRestartMidRebalance(t *testing.T) {
	cfg := faultChaosConfig()
	cfg.Faults = &FaultSchedule{KillRestart: true, LeaseMs: 60_000}
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills != 1 {
		t.Fatalf("kills = %d, want 1", res.Kills)
	}
	if res.CatchUpsQueued == 0 {
		t.Fatal("no writes were queued for the dead node — the outage saw no traffic")
	}
	if res.CatchUpsReplayed == 0 {
		t.Fatal("no catch-ups replayed at restart — recovery was never exercised")
	}
	res.Print(io.Discard)

	t.Run("FailsWithoutCatchUpReplay", func(t *testing.T) {
		cfg := faultChaosConfig()
		cfg.Faults = &FaultSchedule{KillRestart: true, LeaseMs: 60_000, DisableCatchUpReplay: true}
		if _, err := RunChaos(cfg); err == nil {
			t.Fatal("run passed with catch-up replay disabled: the survival test does not actually depend on replay")
		}
	})
	t.Run("FailsWithoutFailover", func(t *testing.T) {
		cfg := faultChaosConfig()
		cfg.Faults = &FaultSchedule{KillRestart: true, LeaseMs: 60_000, DisableFailover: true}
		if _, err := RunChaos(cfg); err == nil {
			t.Fatal("run passed with read failover disabled: the survival test does not actually depend on failover")
		}
	})
}

// TestChaosSurvivesPartitionedReplica partitions a node away mid-storm
// with a short (40ms) lease and paces the storm past the expiry, so a
// rebalance reclaims the victim's ranges while it is unreachable; the
// heal then rejoins a node whose queued catch-ups partly target ranges
// it no longer owns. Same integrity bar as the kill test: no lost
// acked writes, a serially-consistent CAS history, byte-identical
// replicas after heal.
func TestChaosSurvivesPartitionedReplica(t *testing.T) {
	cfg := faultChaosConfig()
	cfg.Faults = &FaultSchedule{Partition: true, LeaseMs: 40}
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 1 {
		t.Fatalf("partitions = %d, want 1", res.Partitions)
	}
	if res.CatchUpsQueued == 0 {
		t.Fatal("no writes were queued for the partitioned node — the window saw no traffic")
	}
	res.Print(io.Discard)

	t.Run("FailsWithoutFailover", func(t *testing.T) {
		cfg := faultChaosConfig()
		cfg.Faults = &FaultSchedule{Partition: true, LeaseMs: 40, DisableFailover: true}
		if _, err := RunChaos(cfg); err == nil {
			t.Fatal("run passed with read failover disabled: the survival test does not actually depend on failover")
		}
	})
}
