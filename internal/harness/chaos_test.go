package harness

import (
	"io"
	"testing"
)

// TestChaosOnlineOperations gates the online paths in CI (make race runs
// it under the race detector): writers hammer the engine — and a
// conditional-writer fleet races TestAndSet on shared keys — while an
// index backfills and the cluster runs repeated chunked rebalances.
// RunChaos returns an error on any failed read, lost key, missing index
// entry, un-GC-able dangling entry, or any conditional outcome the
// serial model cannot explain (double-accepted or lost swaps).
func TestChaosOnlineOperations(t *testing.T) {
	cfg := DefaultChaosConfig()
	if testing.Short() {
		cfg.Writers = 4
		// Must exceed the writer fleet's 119-id cycle: the delete branch
		// only fires on a row a *previous* iteration inserted at the same
		// id, which first happens once i wraps past 119.
		cfg.OpsPerWriter = 150
		cfg.Rebalances = 3
		cfg.CASWriters = 3
		cfg.CASOpsPerWriter = 150
	}
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted == 0 || res.Deleted == 0 || res.Reads == 0 {
		t.Fatalf("chaos exercised nothing: %+v", res)
	}
	if res.CASAccepted == 0 {
		t.Fatalf("conditional-writer fleet accepted nothing: %+v", res)
	}
	if res.Rebalances != cfg.Rebalances {
		t.Fatalf("completed %d rebalances, want %d", res.Rebalances, cfg.Rebalances)
	}
	if res.Epoch != int64(2*(cfg.Rebalances+1)) {
		t.Fatalf("final epoch %d, want %d", res.Epoch, 2*(cfg.Rebalances+1))
	}
	if res.Records == 0 || res.Entries != res.Records {
		t.Fatalf("audit mismatch: %d records, %d entries", res.Records, res.Entries)
	}
	res.Print(io.Discard)
}
